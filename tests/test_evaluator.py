"""Evaluator tests: joins, negation, builtins, laziness, indexes."""

import pytest

from repro.datalog.evaluator import (IndexedRelation, constraint_violations,
                                     evaluate, evaluate_query, holds)
from repro.datalog.parser import parse_program
from repro.errors import SchemaError
from repro.relational.database import Database


def db(**relations):
    return Database.from_dict(relations)


class TestBasicEvaluation:

    def test_copy_rule(self):
        out = evaluate(parse_program('v(X) :- r(X).'), db(r={(1,), (2,)}))
        assert out['v'] == {(1,), (2,)}

    def test_union(self):
        program = parse_program('v(X) :- r1(X).\nv(X) :- r2(X).')
        out = evaluate(program, db(r1={(1,)}, r2={(2,)}))
        assert out['v'] == {(1,), (2,)}

    def test_join(self):
        program = parse_program('v(X, Z) :- r(X, Y), s(Y, Z).')
        out = evaluate(program, db(r={(1, 'a'), (2, 'b')},
                                   s={('a', 10), ('a', 11)}))
        assert out['v'] == {(1, 10), (1, 11)}

    def test_projection(self):
        program = parse_program('v(X) :- r(X, _).')
        out = evaluate(program, db(r={(1, 'a'), (1, 'b'), (2, 'c')}))
        assert out['v'] == {(1,), (2,)}

    def test_selection_with_constant(self):
        program = parse_program("v(X) :- r(X, 'keep').")
        out = evaluate(program, db(r={(1, 'keep'), (2, 'drop')}))
        assert out['v'] == {(1,)}

    def test_repeated_variable_in_atom(self):
        program = parse_program('v(X) :- r(X, X).')
        out = evaluate(program, db(r={(1, 1), (1, 2)}))
        assert out['v'] == {(1,)}

    def test_layered_idb(self):
        program = parse_program('a(X) :- r(X).\nb(X) :- a(X), s(X).')
        out = evaluate(program, db(r={(1,), (2,)}, s={(2,), (3,)}))
        assert out['b'] == {(2,)}

    def test_missing_relation_reads_empty(self):
        out = evaluate(parse_program('v(X) :- nothing(X).'), db())
        assert out['v'] == frozenset()


class TestNegation:

    def test_difference(self):
        program = parse_program('v(X) :- r(X), not s(X).')
        out = evaluate(program, db(r={(1,), (2,)}, s={(2,)}))
        assert out['v'] == {(1,)}

    def test_negated_idb(self):
        program = parse_program("""
            a(X) :- r(X), X > 1.
            v(X) :- r(X), not a(X).
        """)
        out = evaluate(program, db(r={(1,), (2,)}))
        assert out['v'] == {(1,)}

    def test_negation_with_anonymous_wildcard(self):
        # not s(X, _) means "no s-tuple with first column X".
        program = parse_program('v(X) :- r(X), not s(X, _).')
        out = evaluate(program, db(r={(1,), (2,)}, s={(2, 'x')}))
        assert out['v'] == {(1,)}

    def test_idb_shadowing(self):
        # When the program defines v, an EDB relation named v is hidden.
        program = parse_program('v(X) :- r(X).')
        out = evaluate(program, db(r={(1,)}, v={(9,)}))
        assert out['v'] == {(1,)}


class TestBuiltins:

    def test_comparison(self):
        program = parse_program('v(X) :- r(X), X > 10.')
        out = evaluate(program, db(r={(5,), (15,)}))
        assert out['v'] == {(15,)}

    def test_equality_binds(self):
        program = parse_program("v(X, Y) :- r(X), Y = 'tag'.")
        out = evaluate(program, db(r={(1,)}))
        assert out['v'] == {(1, 'tag')}

    def test_negated_equality(self):
        program = parse_program('v(X) :- r(X), not X = 2.')
        out = evaluate(program, db(r={(1,), (2,)}))
        assert out['v'] == {(1,)}

    def test_string_comparison_is_lexicographic(self):
        program = parse_program("v(X) :- r(X), X > '1962-06-01'.")
        out = evaluate(program, db(r={('1962-01-01',), ('1962-12-31',)}))
        assert out['v'] == {('1962-12-31',)}

    def test_mixed_type_comparison_raises(self):
        program = parse_program('v(X) :- r(X), X > 5.')
        with pytest.raises(SchemaError):
            evaluate(program, db(r={('abc',)}))

    def test_le_ge(self):
        program = parse_program('v(X) :- r(X), X >= 2, X <= 3.')
        out = evaluate(program, db(r={(1,), (2,), (3,), (4,)}))
        assert out['v'] == {(2,), (3,)}


class TestQueriesAndConstraints:

    def test_evaluate_query(self):
        program = parse_program('v(X) :- r(X).')
        assert evaluate_query(program, db(r={(1,)}), 'v') == {(1,)}

    def test_holds(self):
        program = parse_program('v(X) :- r(X).')
        assert holds(program, db(r={(1,)}), 'v')
        assert not holds(program, db(), 'v')

    def test_constraint_violation_detected(self):
        program = parse_program('⊥ :- r(X), X > 2.')
        violations = constraint_violations(program, db(r={(5,)}))
        assert len(violations) == 1
        assert violations[0][1] == (5,)

    def test_constraint_satisfied(self):
        program = parse_program('⊥ :- r(X), X > 2.')
        assert constraint_violations(program, db(r={(1,)})) == []

    def test_constraint_over_idb(self):
        program = parse_program("""
            big(X) :- r(X), X > 10.
            ⊥ :- big(X).
        """)
        assert constraint_violations(program, db(r={(20,)}))
        assert not constraint_violations(program, db(r={(5,)}))


class TestFirstWitnessMode:
    """The short-circuit mode of ``execute_constraints``: stop at the
    first witness of the first violated rule."""

    def test_stops_at_first_violated_rule(self):
        from repro.datalog.plan import compile_program
        program = parse_program("""
            ⊥ :- r(X), X > 2.
            ⊥ :- r(X), X < 0.
        """)
        plan = compile_program(program)
        edb = db(r={(-1,), (5,), (7,)})
        full = plan.constraint_violations(edb)
        assert len(full) == 2
        first = plan.constraint_violations(edb, first_witness=True)
        assert len(first) == 1
        rule, witness = first[0]
        assert witness in {(-1,), (5,), (7,)}

    def test_run_rule_limit_stops_enumeration(self):
        from repro.datalog.evaluator import _PlanContext, _run_rule
        from repro.datalog.plan import compile_rule
        rule = parse_program('h(X) :- r(X).').rules[0]
        plan = compile_rule(rule)
        ctx = _PlanContext({'r': {(i,) for i in range(100)}})
        out: set = set()
        _run_rule(plan, ctx, out, limit=1)
        assert len(out) == 1
        unlimited: set = set()
        _run_rule(plan, ctx, unlimited)
        assert len(unlimited) == 100

    def test_satisfied_constraints_agree(self):
        from repro.datalog.plan import compile_program
        plan = compile_program(parse_program('⊥ :- r(X), X > 2.'))
        edb = db(r={(1,)})
        assert plan.constraint_violations(edb) == []
        assert plan.constraint_violations(edb, first_witness=True) == []


class TestProbeMemoization:

    def test_repeated_probes_run_rules_once(self, monkeypatch):
        from repro.datalog import evaluator
        from repro.datalog.plan import compile_program
        program = parse_program("""
            aux(X) :- r(X).
            v(X) :- s(X), aux(X).
        """)
        plan = compile_program(program)
        ctx = evaluator._PlanContext({'r': {(1,)}, 's': set()}, plan)
        calls = []
        original = evaluator._probe_rule

        def counted(rule_plan, c, row):
            calls.append(row)
            return original(rule_plan, c, row)

        monkeypatch.setattr(evaluator, '_probe_rule', counted)
        assert ctx.probe('aux', (1,)) is True
        assert ctx.probe('aux', (1,)) is True      # memoized
        assert ctx.probe('aux', (2,)) is False
        assert ctx.probe('aux', (2,)) is False     # negative memoized
        assert calls == [(1,), (2,)]


class TestLazyEvaluation:

    def test_goals_limits_materialisation(self):
        program = parse_program("""
            cheap(X) :- r(X).
            expensive(X) :- r(X), s(X).
            v(X) :- cheap(X).
        """)
        out = evaluate(program, db(r={(1,)}, s={(1,)}), goals=('v',))
        assert out['v'] == {(1,)}
        assert 'expensive' not in out.names()

    def test_fully_bound_idb_probe(self):
        # `aux` is only probed with bound arguments: the lazy path.
        program = parse_program("""
            aux(X) :- big(X, _).
            v(X) :- small(X), not aux(X).
        """)
        out = evaluate(program, db(small={(1,), (2,)}, big={(2, 9)}),
                       goals=('v',))
        assert out['v'] == {(1,)}

    def test_probe_head_constants(self):
        program = parse_program("""
            tagged(X, 'yes') :- r(X).
            v(X) :- s(X), tagged(X, 'yes').
        """)
        out = evaluate(program, db(r={(1,)}, s={(1,), (2,)}), goals=('v',))
        assert out['v'] == {(1,)}


class TestIndexedRelation:

    def test_lookup_builds_index(self):
        rel = IndexedRelation(frozenset({(1, 'a'), (2, 'b'), (1, 'c')}))
        assert set(rel.lookup((0,), (1,))) == {(1, 'a'), (1, 'c')}

    def test_fully_bound_exists(self):
        rel = IndexedRelation(frozenset({(1, 'a')}))
        assert rel.exists((0, 1), (1, 'a'), 2)
        assert not rel.exists((0, 1), (1, 'x'), 2)

    def test_add_maintains_indexes(self):
        rel = IndexedRelation({(1, 'a')})
        assert set(rel.lookup((0,), (1,))) == {(1, 'a')}
        rel.add((1, 'b'))
        assert set(rel.lookup((0,), (1,))) == {(1, 'a'), (1, 'b')}

    def test_discard_maintains_indexes(self):
        rel = IndexedRelation({(1, 'a'), (1, 'b')})
        rel.lookup((0,), (1,))
        rel.discard((1, 'a'))
        assert set(rel.lookup((0,), (1,))) == {(1, 'b')}
        rel.discard((1, 'b'))
        assert rel.lookup((0,), (1,)) == ()

    def test_add_existing_is_noop(self):
        rel = IndexedRelation({(1,)})
        rel.add((1,))
        assert rel.rows == {(1,)}

    def test_evaluate_accepts_indexed_relations(self):
        program = parse_program('v(X) :- r(X), not s(X).')
        edb = {'r': IndexedRelation({(1,), (2,)}),
               's': IndexedRelation({(2,)})}
        assert evaluate(program, edb)['v'] == {(1,)}
