"""Asyncio serving front-end tests: admission control, group commit
semantics (atomic batches, abort isolation via individual retry),
lifecycle, and equivalence with direct engine execution.

No pytest-asyncio in the image: every test is a plain sync function
driving its own ``asyncio.run`` — the server only lives inside the
coroutine anyway."""

import asyncio
import threading

import pytest

from repro.errors import ConstraintViolation, SchemaError
from repro.rdbms.dml import Delete, Insert
from repro.rdbms.engine import Engine
from repro.rdbms.serve import Receipt, ViewServer
from repro.rdbms.sharded import ShardedEngine

UNION_KEYS = {'v': 'a', 'r1': 'a', 'r2': 'a'}


def _luxury_engine(luxury_strategy):
    engine = Engine(luxury_strategy.sources)
    engine.load('items', [(1, 'watch', 5000), (2, 'ring', 4000)])
    engine.define_view(luxury_strategy, validate_first=False)
    return engine


def _union_engine(union_strategy):
    engine = Engine(union_strategy.sources)
    engine.load('r1', [(1,)])
    engine.load('r2', [(2,)])
    engine.define_view(union_strategy, validate_first=False)
    return engine


class TestLifecycle:

    def test_parameters_validated(self, union_strategy):
        engine = _union_engine(union_strategy)
        with pytest.raises(SchemaError, match='max_inflight'):
            ViewServer(engine, max_inflight=0)
        with pytest.raises(SchemaError, match='max_group'):
            ViewServer(engine, max_group=0)
        engine.close()

    def test_submit_requires_running_server(self, union_strategy):
        engine = _union_engine(union_strategy)

        async def main():
            server = ViewServer(engine)
            with pytest.raises(SchemaError, match='not running'):
                await server.submit([('v', [Insert((7,))])])
            await server.start()
            with pytest.raises(SchemaError, match='already started'):
                await server.start()
            await server.stop()
            with pytest.raises(SchemaError, match='not running'):
                await server.submit([('v', [Insert((7,))])])
            await server.stop()                  # idempotent

        asyncio.run(main())
        engine.close()

    def test_stop_drains_pending_submissions(self, union_strategy):
        """Submissions already queued when stop() is called still
        commit: the sentinel is FIFO-behind them."""
        engine = _union_engine(union_strategy)

        async def main():
            server = await ViewServer(engine).start()
            submits = [asyncio.ensure_future(
                server.submit([('v', [Insert((10 + i,))])]))
                for i in range(5)]
            while server.stats['submitted'] < 5:
                await asyncio.sleep(0)
            await server.stop()
            return await asyncio.gather(*submits)

        receipts = asyncio.run(main())
        assert all(isinstance(r, Receipt) for r in receipts)
        assert frozenset(engine.rows('v')) >= {(10,), (11,), (12,),
                                               (13,), (14,)}
        engine.close()


    def test_stop_drains_submissions_held_at_admission(
            self, union_strategy):
        """Regression: a submission past the closed-check but parked
        on the admission *semaphore* is not yet in the queue — a stop
        that only sentinels the queue strands it behind the sentinel
        and its future never resolves.  ``stop()`` must wait for the
        in-flight population to drain first: every accepted submission
        either commits or fails cleanly, never hangs."""
        engine = _union_engine(union_strategy)

        async def main():
            server = await ViewServer(engine, max_inflight=1,
                                      max_group=1).start()
            submits = [asyncio.ensure_future(
                server.submit([('v', [Insert((20 + i,))])]))
                for i in range(8)]
            # All eight are accepted (counted) but at most one holds
            # the admission slot; the rest are parked on the semaphore.
            while server.stats['submitted'] < 8:
                await asyncio.sleep(0)
            await asyncio.wait_for(server.stop(), timeout=30)
            return await asyncio.wait_for(asyncio.gather(*submits),
                                          timeout=30)

        receipts = asyncio.run(main())
        assert all(isinstance(r, Receipt) for r in receipts)
        assert frozenset(engine.rows('v')) >= {(20 + i,)
                                               for i in range(8)}
        engine.close()


class TestGroupCommit:

    def test_single_submission_matches_direct_execution(
            self, union_strategy):
        served = _union_engine(union_strategy)
        direct = _union_engine(union_strategy)

        async def main():
            async with ViewServer(served) as server:
                return await server.submit(
                    [('v', [Insert((3,)), Delete({'a': 1})])])

        receipt = asyncio.run(main())
        direct.execute_many([('v', [Insert((3,)), Delete({'a': 1})])])
        assert receipt == Receipt(group_size=1, retried=False)
        assert served.database() == direct.database()
        served.close()
        direct.close()

    def test_concurrent_submissions_coalesce(self, union_strategy):
        """While one engine run is on the executor, later submissions
        accumulate and commit as one grouped run — observable via
        ``group_size`` and the stats counters."""
        served = _union_engine(union_strategy)
        direct = _union_engine(union_strategy)
        gate = threading.Event()
        real = served.execute_many

        def gated(buckets):
            # The first engine run blocks until every client has
            # submitted, forcing all remaining submissions into one
            # group (deterministic grouping without timing luck).
            gate.wait(timeout=10)
            return real(buckets)

        served.execute_many = gated
        clients = 6

        async def main():
            async with ViewServer(served, max_group=32) as server:
                submits = [asyncio.ensure_future(
                    server.submit([('v', [Insert((20 + i,))])]))
                    for i in range(clients)]
                while server.stats['submitted'] < clients:
                    await asyncio.sleep(0.01)
                gate.set()
                receipts = await asyncio.gather(*submits)
            return receipts, dict(server.stats)

        receipts, stats = asyncio.run(main())
        for i in range(clients):
            direct.execute_many([('v', [Insert((20 + i,))])])
        assert served.database() == direct.database()
        assert stats['max_group'] > 1
        assert stats['grouped'] >= stats['max_group']
        assert stats['committed'] == clients
        assert stats['groups'] < clients          # batching happened
        assert any(r.group_size > 1 for r in receipts)
        served.close()
        direct.close()

    def test_group_commit_off_never_batches(self, union_strategy):
        served = _union_engine(union_strategy)
        gate = threading.Event()
        real = served.execute_many

        def gated(buckets):
            gate.wait(timeout=10)
            return real(buckets)

        served.execute_many = gated
        clients = 4

        async def main():
            async with ViewServer(served,
                                  group_commit=False) as server:
                submits = [asyncio.ensure_future(
                    server.submit([('v', [Insert((30 + i,))])]))
                    for i in range(clients)]
                while server.stats['submitted'] < clients:
                    await asyncio.sleep(0.01)
                gate.set()
                receipts = await asyncio.gather(*submits)
            return receipts, dict(server.stats)

        receipts, stats = asyncio.run(main())
        assert all(r.group_size == 1 for r in receipts)
        assert stats['groups'] == clients
        assert stats['grouped'] == 0
        assert stats['max_group'] == 1
        served.close()

    def test_max_inflight_one_serialises_everything(
            self, union_strategy):
        """With a one-slot admission window at most one submission is
        queued or running at a time, so no group can ever form."""
        served = _union_engine(union_strategy)

        async def main():
            async with ViewServer(served, max_inflight=1) as server:
                receipts = await asyncio.gather(*[
                    server.submit([('v', [Insert((40 + i,))])])
                    for i in range(5)])
            return receipts, dict(server.stats)

        receipts, stats = asyncio.run(main())
        assert all(r.group_size == 1 for r in receipts)
        assert stats['max_group'] == 1
        served.close()


class TestAbortIsolation:

    def test_failing_member_retried_individually(self, luxury_strategy):
        """One constraint-violating client in a group: the violator
        alone raises, its peers commit via the retry pass, and the
        final state is exactly the peers' effect."""
        served = _luxury_engine(luxury_strategy)
        direct = _luxury_engine(luxury_strategy)
        gate = threading.Event()
        real = served.execute_many

        def gated(buckets):
            gate.wait(timeout=10)
            return real(buckets)

        served.execute_many = gated
        good = [[('luxuryitems', [Insert((10 + i, f'good{i}', 3000))])]
                for i in range(3)]
        bad = [('luxuryitems', [Insert((99, 'socks', 8))])]

        async def main():
            async with ViewServer(served) as server:
                futures = [asyncio.ensure_future(server.submit(txn))
                           for txn in (good[0], bad, good[1], good[2])]
                while server.stats['submitted'] < 4:
                    await asyncio.sleep(0.01)
                gate.set()
                outcomes = await asyncio.gather(*futures,
                                                return_exceptions=True)
            return outcomes, dict(server.stats)

        outcomes, stats = asyncio.run(main())
        assert isinstance(outcomes[1], ConstraintViolation)
        committed = [o for o in outcomes if isinstance(o, Receipt)]
        assert len(committed) == 3
        for txn in good:
            direct.execute_many(txn)
        assert served.database() == direct.database()
        assert stats['failed'] == 1
        assert stats['committed'] == 3
        # The grouped run failed, so peers went through the retry pass.
        assert stats['retried'] >= 1
        assert any(r.retried for r in committed)
        served.close()
        direct.close()

    def test_solo_failure_raises_without_retry(self, luxury_strategy):
        served = _luxury_engine(luxury_strategy)

        async def main():
            async with ViewServer(served) as server:
                with pytest.raises(ConstraintViolation):
                    await server.submit(
                        [('luxuryitems', [Insert((99, 'socks', 8))])])
                return dict(server.stats)

        stats = asyncio.run(main())
        assert stats == {'submitted': 1, 'committed': 0, 'failed': 1,
                         'groups': 1, 'grouped': 0, 'max_group': 1,
                         'retried': 0, 'reads': 0, 'shard_failures': 0}
        served.close()


class TestServedShardedEngine:

    def test_serves_process_backed_cluster(self, union_strategy):
        """End-to-end smoke: the server in front of worker processes —
        concurrent sessions, grouped commits, state identical to a
        single engine."""
        direct = _union_engine(union_strategy)
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS,
                                execution='processes')
        sharded.load('r1', [(1,)])
        sharded.load('r2', [(2,)])
        sharded.define_view(union_strategy, validate_first=False)

        async def main():
            async with ViewServer(sharded, max_group=8) as server:
                async def session(base):
                    for n in range(4):
                        await server.submit(
                            [('v', [Insert((base + n,))])])
                await asyncio.gather(*[session(100 * c)
                                       for c in range(1, 4)])

        asyncio.run(main())
        for c in range(1, 4):
            for n in range(4):
                direct.execute_many([('v', [Insert((100 * c + n,))])])
        assert sharded.database() == direct.database()
        assert frozenset(sharded.rows('v')) == \
            frozenset(direct.rows('v'))
        sharded.close()
        direct.close()
