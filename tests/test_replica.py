"""Read-replica tests: WAL-tailing catch-up, the never-runs-plans
property (deltas go straight to the backend, the ∂put/get plans ran
only on the primary), read-your-writes under ``min_lsn``, routing
policies, sharded replica fan-out, and the asyncio front-end's
routed ``rows()`` with ``Receipt.lsn``.

The randomized bit-identity proof (replica == reference across every
execution mode, including post-SIGKILL replay) lives in
``tests/fuzz/test_differential.py``; these are the deterministic
anchors."""

import asyncio

import pytest

from repro.errors import SchemaError
from repro.rdbms import faults
from repro.rdbms.dml import Insert
from repro.rdbms.engine import Engine
from repro.rdbms.replica import ReplicaEngine, ReplicaSet
from repro.rdbms.wal import read_records, read_start_lsn
from repro.rdbms.serve import ViewServer
from repro.rdbms.sharded import ShardedEngine


def _primary(luxury_strategy, path):
    engine = Engine(luxury_strategy.sources, wal=path, wal_sync=False)
    engine.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                          (3, 'cap', 10)])
    engine.define_view(luxury_strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


class TestReplicaEngine:

    def test_catch_up_reaches_identical_state(self, luxury_strategy,
                                              tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        replica = ReplicaEngine(luxury_strategy.sources, primary.wal)
        try:
            applied = replica.catch_up()
            assert applied == primary.commit_lsn
            assert replica.applied_lsn == primary.commit_lsn
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            assert replica.lag() == 1
            assert replica.catch_up() == 1
            assert replica.database() == primary.database()
            assert frozenset(replica.rows('luxuryitems')) \
                == frozenset(primary.rows('luxuryitems'))
            assert replica.stats['commits_applied'] >= 1
        finally:
            replica.close()
            primary.close()

    def test_catch_up_never_runs_plans(self, luxury_strategy, tmp_path):
        """Replication is O(|Δ|) *because* no plan runs: the replica's
        backend evaluation surface is poisoned and catch-up must still
        reach the primary's state."""
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        replica = ReplicaEngine(luxury_strategy.sources, primary.wal)
        try:
            backend = replica.engine.backend

            def poisoned(*args, **kwargs):      # pragma: no cover
                raise AssertionError('replica ran a plan')

            for method in ('evaluate_get', 'evaluate_incremental',
                           'evaluate_incremental_batch',
                           'evaluate_putback',
                           'check_view_constraints'):
                setattr(backend, method, poisoned)
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            with primary.transaction() as txn:
                txn.insert('luxuryitems', (5, 'jet', 500_000))
                txn.delete('luxuryitems', where={'iid': 2})
            replica.catch_up()
            assert replica.database() == primary.database()
        finally:
            replica.close()
            primary.close()

    def test_file_tailing_replica(self, luxury_strategy, tmp_path):
        """A replica pointed at the log *path* (another process's view
        of the world) replays the identical committed prefix."""
        path = tmp_path / 'p.wal'
        primary = _primary(luxury_strategy, path)
        replica = ReplicaEngine(luxury_strategy.sources, path)
        try:
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            assert replica.tail_lsn() == primary.commit_lsn
            replica.catch_up()
            assert replica.database() == primary.database()
        finally:
            replica.close()
            primary.close()

    def test_live_replica_survives_primary_checkpoint(
            self, luxury_strategy, tmp_path):
        """Regression: the primary compacts its WAL *while a replica
        is tailing it*.  The rewrite replaces history the replica
        already applied with a snapshot at fresh LSNs; catch-up must
        detect the rotation (header start LSN beyond its applied
        position), replay the snapshot prefix, and keep tailing — not
        double-apply or diverge."""
        path = tmp_path / 'p.wal'
        primary = _primary(luxury_strategy, path)
        replica = ReplicaEngine(luxury_strategy.sources, path)
        try:
            replica.catch_up()
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            primary.checkpoint()
            primary.insert('luxuryitems', (5, 'jet', 80_000))
            replica.catch_up()
            assert replica.stats['rotations'] == 1
            assert replica.database() == primary.database()
            assert frozenset(replica.rows('luxuryitems')) \
                == frozenset(primary.rows('luxuryitems'))
            # Back to plain tailing afterwards: no spurious rotations.
            primary.insert('luxuryitems', (6, 'villa', 70_000))
            replica.catch_up()
            assert replica.stats['rotations'] == 1
            assert replica.database() == primary.database()
        finally:
            replica.close()
            primary.close()

    def test_bounded_catch_up_never_stops_mid_snapshot(
            self, union_strategy, tmp_path):
        """Regression: ``catch_up(upto=)`` with a bound that falls
        inside a checkpoint's snapshot must keep applying until the
        end-of-snapshot sentinel — stopping between the snapshot's
        ``load`` records would leave some tables rewritten and others
        stale, a state the primary never had."""
        path = tmp_path / 'p.wal'
        primary = Engine(union_strategy.sources, wal=path,
                         wal_sync=False)
        primary.load('r1', [(1,), (2,)])
        primary.load('r2', [(7,), (8,)])
        replica = ReplicaEngine(union_strategy.sources, path)
        try:
            replica.catch_up()
            primary.insert('r1', (3,))
            primary.insert('r2', (9,))
            primary.checkpoint()
            # Bound the catch-up at the snapshot's very first record:
            # naively honoring it would stop after one ``load``.
            first = read_records(path).__next__().lsn
            replica.catch_up(upto=first)
            assert replica.database() == primary.database()
            assert replica.applied_lsn >= read_start_lsn(path)
        finally:
            replica.close()
            primary.close()

    def test_min_lsn_read_catches_up_first(self, luxury_strategy,
                                           tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        replica = ReplicaEngine(luxury_strategy.sources, primary.wal)
        try:
            replica.catch_up()
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            lsn = primary.commit_lsn
            # Unbounded read serves the stale applied LSN...
            assert (4, 'yacht', 90_000) not in replica.rows('items')
            # ...the session's own-commit bound forces catch-up.
            assert (4, 'yacht', 90_000) \
                in replica.rows('items', min_lsn=lsn)
        finally:
            replica.close()
            primary.close()


class TestReplicaSet:

    def _set(self, luxury_strategy, tmp_path, n=2, **kwargs):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        replicas = [ReplicaEngine(luxury_strategy.sources, primary.wal)
                    for _ in range(n)]
        return primary, ReplicaSet(primary, replicas, **kwargs)

    def test_unknown_policy_rejected(self, luxury_strategy, tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        try:
            with pytest.raises(SchemaError, match='unknown read policy'):
                ReplicaSet(primary, [], policy='nearest')
        finally:
            primary.close()

    def test_round_robin_spreads_reads(self, luxury_strategy, tmp_path):
        primary, router = self._set(luxury_strategy, tmp_path,
                                    max_lag=1_000_000)
        try:
            router.catch_up()
            seen = {id(router._pick()) for _ in range(4)}
            assert len(seen) == 2               # both replicas rotated
            router.read('luxuryitems')
            assert router.stats['replica_reads'] == 1
            assert router.stats['primary_reads'] == 0
        finally:
            router.close()
            primary.close()

    def test_freshest_picks_highest_lsn(self, luxury_strategy,
                                        tmp_path):
        primary, router = self._set(luxury_strategy, tmp_path,
                                    policy='freshest',
                                    max_lag=1_000_000)
        try:
            router.replicas[1].catch_up()       # only one catches up
            assert router._pick() is router.replicas[1]
        finally:
            router.close()
            primary.close()

    def test_max_lag_bounds_staleness(self, luxury_strategy, tmp_path):
        primary, router = self._set(luxury_strategy, tmp_path, n=1,
                                    max_lag=0)
        try:
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            # max_lag=0: an unbounded read may never serve stale rows.
            assert (4, 'yacht', 90_000) in router.read('items')
            assert router.stats['catch_ups'] >= 1
        finally:
            router.close()
            primary.close()

    def test_read_your_writes_via_commit_lsn(self, luxury_strategy,
                                             tmp_path):
        primary, router = self._set(luxury_strategy, tmp_path,
                                    max_lag=1_000_000)
        try:
            router.catch_up()
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            token = router.commit_lsn()
            # Every routed read at the session's token sees the write,
            # whichever replica the rotation lands on.
            for _ in range(4):
                assert (4, 'yacht', 90_000) \
                    in router.read('luxuryitems', min_lsn=token)
        finally:
            router.close()
            primary.close()

    def test_empty_set_falls_back_to_primary(self, luxury_strategy,
                                             tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        router = ReplicaSet(primary, [])
        try:
            assert (1, 'watch', 5000) in router.read('items')
            assert router.stats['primary_reads'] == 1
        finally:
            router.close()
            primary.close()

    def test_broken_replica_quarantined_read_retries_sibling(
            self, luxury_strategy, tmp_path):
        """A replica whose tail raises is dropped from the rotation and
        the same read retries on the surviving replica — the reader
        never sees the error."""
        primary, router = self._set(luxury_strategy, tmp_path, n=2)
        plan = faults.FaultPlan()
        plan.fail_replica()                      # first catch-up raises
        try:
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            with plan.installed():
                rows = router.read('items')      # max_lag=0 → catch-up
            assert (4, 'yacht', 90_000) in rows
            assert plan.fired('replica.catch_up') == 1
            assert router.stats['quarantines'] == 1   # monotonic
            assert router.stats['quarantined'] == 1   # live gauge
            assert router.stats['in_rotation'] == 1
            assert router.stats['replica_reads'] == 1
            assert router.stats['primary_reads'] == 0
            assert len(router.quarantined) == 1
            assert len(router.replicas) == 1     # out of the rotation
        finally:
            router.close()
            primary.close()

    def test_last_replica_quarantined_degrades_to_primary(
            self, luxury_strategy, tmp_path):
        """With every replica quarantined the set serves from the
        primary; ``reinstate()`` is the operator's way back."""
        primary, router = self._set(luxury_strategy, tmp_path, n=1)
        plan = faults.FaultPlan()
        plan.fail_replica()
        try:
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            with plan.installed():
                assert (4, 'yacht', 90_000) in router.read('items')
            assert router.stats == {
                'replica_reads': 0, 'primary_reads': 1,
                'catch_ups': 0, 'quarantines': 1, 'stalled_reads': 0,
                'in_rotation': 0, 'quarantined': 1}
            assert router.replicas == []
            # Fault fixed: bring it back, reads route to it again.
            # The live gauges move back; the monotonic counter stays.
            assert router.reinstate() == 1
            assert router.quarantined == ()
            assert router.stats['quarantined'] == 0
            assert router.stats['in_rotation'] == 1
            assert router.stats['quarantines'] == 1
            assert (4, 'yacht', 90_000) in router.read('items')
            assert router.stats['replica_reads'] == 1
        finally:
            router.close()
            primary.close()

    def test_stalled_tail_degrades_read_without_quarantine(
            self, luxury_strategy, tmp_path):
        """A catch-up pass that applies nothing (stalled tail) keeps
        the replica in rotation but the bounded read serves from the
        primary — staleness bounds hold, nothing stale is returned."""
        primary, router = self._set(luxury_strategy, tmp_path, n=1)
        plan = faults.FaultPlan()
        plan.stall_replica()
        try:
            primary.insert('luxuryitems', (4, 'yacht', 90_000))
            with plan.installed():
                assert (4, 'yacht', 90_000) in router.read('items')
            assert router.stats['stalled_reads'] == 1
            assert router.stats['primary_reads'] == 1
            assert router.stats['quarantines'] == 0
            assert router.stats['quarantined'] == 0
            assert len(router.replicas) == 1     # still in rotation
            # The stall was transient: the next read is served by the
            # (now caught-up) replica.
            assert (4, 'yacht', 90_000) in router.read('items')
            assert router.stats['replica_reads'] == 1
        finally:
            router.close()
            primary.close()


class TestShardedReplicas:

    def _sharded(self, luxury_strategy, **kwargs):
        engine = ShardedEngine(luxury_strategy.sources, shards=2,
                               shard_keys={'luxuryitems': 'iid',
                                           'items': 'iid'},
                               **kwargs)
        engine.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                              (3, 'cap', 10)])
        engine.define_view(luxury_strategy, validate_first=False)
        return engine

    def test_routed_scatter_gather_matches_primary(self,
                                                   luxury_strategy):
        engine = self._sharded(luxury_strategy, read_replicas=2,
                               replica_max_lag=0)
        try:
            assert len(engine.replica_sets) == 2
            engine.insert('luxuryitems', (4, 'yacht', 90_000))
            routed = engine.rows('luxuryitems')
            assert routed == engine._gather_primary('luxuryitems')
            assert (4, 'yacht', 90_000) in routed
        finally:
            engine.close()

    def test_commit_lsns_vector_read_your_writes(self, luxury_strategy):
        engine = self._sharded(luxury_strategy, read_replicas=1,
                               replica_max_lag=1_000_000)
        try:
            engine.insert('luxuryitems', (4, 'yacht', 90_000))
            token = engine.commit_lsns()
            assert len(token) == 2 and any(token)
            assert (4, 'yacht', 90_000) \
                in engine.rows('luxuryitems', min_lsn=token)
        finally:
            engine.close()

    def test_min_lsn_sequence_length_checked(self, luxury_strategy):
        engine = self._sharded(luxury_strategy, read_replicas=1)
        try:
            with pytest.raises(SchemaError, match='covers 3 shards'):
                engine.rows('luxuryitems', min_lsn=(1, 2, 3))
        finally:
            engine.close()

    def test_process_execution_replicas_tail_worker_logs(
            self, luxury_strategy, tmp_path):
        """Process-mode replicas tail the worker-owned shard logs by
        file path and serve the same routed reads as thread mode."""
        engine = ShardedEngine(luxury_strategy.sources, shards=2,
                               shard_keys={'luxuryitems': 'iid',
                                           'items': 'iid'},
                               execution='processes',
                               wal_dir=tmp_path, wal_sync=False,
                               read_replicas=1, replica_max_lag=0)
        try:
            engine.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                                  (3, 'cap', 10)])
            engine.define_view(luxury_strategy, validate_first=False)
            engine.insert('luxuryitems', (4, 'yacht', 90_000))
            token = engine.commit_lsns()
            assert len(token) == 2 and any(token)
            routed = engine.rows('luxuryitems', min_lsn=token)
            assert routed == engine._gather_primary('luxuryitems')
            assert (4, 'yacht', 90_000) in routed
            assert sum(rs.stats['replica_reads']
                       for rs in engine.replica_sets) > 0
        finally:
            engine.close()

    def test_negative_replicas_rejected(self, luxury_strategy):
        with pytest.raises(SchemaError, match='read_replicas'):
            ShardedEngine(luxury_strategy.sources, shards=2,
                          shard_keys={'luxuryitems': 'iid',
                                      'items': 'iid'},
                          read_replicas=-1)


class TestServedReads:

    def test_receipt_lsn_reads_own_write_through_replicas(
            self, luxury_strategy, tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        replicas = [ReplicaEngine(luxury_strategy.sources, primary.wal)
                    for _ in range(2)]
        router = ReplicaSet(primary, replicas, max_lag=1_000_000)
        router.catch_up()

        async def main():
            async with ViewServer(primary, replicas=router,
                                  read_threads=2) as server:
                receipt = await server.submit(
                    [('luxuryitems', [Insert((4, 'yacht', 90_000))])])
                assert receipt.lsn == primary.commit_lsn
                for _ in range(4):
                    rows = await server.rows('luxuryitems',
                                             min_lsn=receipt.lsn)
                    assert (4, 'yacht', 90_000) in rows
                assert server.stats['reads'] == 4

        try:
            asyncio.run(main())
        finally:
            router.close()
            primary.close()

    def test_rows_without_replicas_reads_engine(self, luxury_strategy,
                                                tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')

        async def main():
            async with ViewServer(primary) as server:
                rows = await server.rows('luxuryitems')
                assert (1, 'watch', 5000) in rows

        try:
            asyncio.run(main())
        finally:
            primary.close()

    def test_rows_requires_running_server(self, luxury_strategy,
                                          tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        server = ViewServer(primary)
        try:
            with pytest.raises(SchemaError, match='not running'):
                asyncio.run(server.rows('luxuryitems'))
        finally:
            primary.close()

    def test_read_threads_validated(self, luxury_strategy, tmp_path):
        primary = _primary(luxury_strategy, tmp_path / 'p.wal')
        try:
            with pytest.raises(SchemaError, match='read_threads'):
                ViewServer(primary, read_threads=0)
        finally:
            primary.close()
