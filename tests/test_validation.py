"""Validation algorithm tests (Algorithm 1, §4) — the paper's headline
soundness claims, exercised on valid strategies and broken mutations."""

import pytest

from repro.core.strategy import UpdateStrategy
from repro.core.validation import validate, well_definedness_programs
from repro.datalog.evaluator import evaluate
from repro.errors import ValidationError
from repro.fol.solver import SolverConfig
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema

FAST = SolverConfig(random_trials=40)


class TestWellDefinedness:

    def test_programs_only_for_paired_deltas(self, union_strategy):
        checks = well_definedness_programs(union_strategy)
        # Only r1 has both +r1 and -r1.
        assert [goal for goal, _ in checks] == ['__wd_r1__']

    def test_contradictory_strategy_fails(self, union_sources):
        strategy = UpdateStrategy.parse('v', union_sources, """
            +r1(X) :- v(X), r1(X).
            -r1(X) :- v(X), r1(X).
        """)
        report = validate(strategy, config=FAST)
        assert not report.valid
        assert 'well-definedness' in report.failures()[0].name

    def test_disjoint_deltas_pass(self, union_strategy):
        report = validate(union_strategy, config=FAST)
        assert all(c.passed for c in report.checks
                   if 'well-definedness' in c.name)


class TestAlgorithmOne:

    def test_union_strategy_valid(self, union_strategy):
        report = validate(union_strategy, config=FAST)
        assert report.valid
        assert report.conclusive  # LVGN ⇒ sound and complete (Thm 4.3)
        assert report.expected_get_confirmed is True
        assert report.view_definition is union_strategy.expected_get

    def test_union_strategy_without_expected_get(self, union_sources):
        from tests.conftest import UNION_PUTDELTA
        strategy = UpdateStrategy.parse('v', union_sources, UNION_PUTDELTA)
        report = validate(strategy, config=FAST)
        assert report.valid
        assert report.derived_get is not None
        db = Database.from_dict({'r1': {(1,)}, 'r2': {(2,)}})
        assert evaluate(report.derived_get, db)['v'] == {(1,), (2,)}

    def test_luxury_strategy_valid(self, luxury_strategy):
        report = validate(luxury_strategy, config=FAST)
        assert report.valid and report.conclusive

    def test_ced_strategy_valid(self, ced_strategy):
        report = validate(ced_strategy, config=FAST)
        assert report.valid

    def test_wrong_expected_get_fails_but_derivation_recovers(
            self, union_sources):
        from tests.conftest import UNION_PUTDELTA
        strategy = UpdateStrategy.parse(
            'v', union_sources, UNION_PUTDELTA,
            expected_get='v(X) :- r1(X).')  # wrong: misses r2
        report = validate(strategy, config=FAST)
        assert report.valid
        assert report.expected_get_confirmed is False
        assert report.derived_get is not None

    def test_wrong_expected_get_without_recovery(self, union_sources):
        from tests.conftest import UNION_PUTDELTA
        strategy = UpdateStrategy.parse(
            'v', union_sources, UNION_PUTDELTA,
            expected_get='v(X) :- r1(X).')
        report = validate(strategy, config=FAST,
                          derive_when_expected_fails=False)
        assert not report.valid

    def test_putget_violation_detected(self, union_sources):
        # Deletion-only strategy: insertions into the view are lost.
        strategy = UpdateStrategy.parse('v', union_sources, """
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
        """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
        report = validate(strategy, config=FAST)
        assert not report.valid
        failed = report.failures()[0]
        assert 'PutGet' in failed.name
        assert failed.witness is not None

    def test_getput_violation_detected(self, union_sources):
        # Deletes tuples that ARE in the view: put changes a steady state.
        strategy = UpdateStrategy.parse('v', union_sources, """
            -r1(X) :- r1(X), v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
        """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
        report = validate(strategy, config=FAST)
        assert not report.valid

    def test_raise_if_invalid(self, union_sources):
        strategy = UpdateStrategy.parse('v', union_sources, """
            +r1(X) :- v(X), r1(X).
            -r1(X) :- v(X), r1(X).
        """)
        report = validate(strategy, config=FAST)
        with pytest.raises(ValidationError):
            report.raise_if_invalid()

    def test_report_rendering(self, union_strategy):
        report = validate(union_strategy, config=FAST)
        text = str(report)
        assert 'VALID' in text and 'PutGet' in text


class TestValidatedPutGetRoundTrip:

    """Dynamic confirmation of the static verdicts: for validated
    strategies, GetPut and PutGet hold on concrete databases."""

    def _roundtrip(self, strategy, source, views):
        report = validate(strategy, config=FAST)
        assert report.valid
        get_program = report.view_definition
        current = evaluate(get_program, source)[strategy.view.name]
        # GetPut: put(S, get(S)) = S.
        assert strategy.put(source, current) == source
        for view in views:
            updated = strategy.put(source, view)
            # PutGet: get(put(S, V')) = V'.
            assert evaluate(get_program,
                            updated)[strategy.view.name] == view

    def test_union(self, union_strategy, union_database):
        self._roundtrip(union_strategy, union_database,
                        [set(), {(1,)}, {(1,), (3,), (4,)}, {(9,)}])

    def test_luxury(self, luxury_strategy):
        source = Database.from_dict({
            'items': {(1, 'watch', 5000), (2, 'pen', 3)}})
        self._roundtrip(luxury_strategy, source,
                        [set(), {(1, 'watch', 5000), (7, 'ring', 1500)}])

    def test_ced(self, ced_strategy):
        source = Database.from_dict({
            'ed': {('a', 'cs'), ('b', 'math')}, 'eed': {('b', 'math')}})
        self._roundtrip(ced_strategy, source,
                        [set(), {('a', 'cs'), ('b', 'math')},
                         {('c', 'bio')}])
