"""Unit tests for the deterministic fault-injection subsystem.

The distributed-stack tests (``test_procpool.py``, ``test_wal.py``,
``tests/fuzz/test_chaos.py``) prove what the *system* does under
injected faults; these prove the injector itself — rule matching, hit
counting, once/recurring arming, identity stamping, central vs.
site-interpreted actions, and the no-plan fast path — so a chaos test
that passes is passing for the right reason.
"""

import pytest

from repro.errors import SchemaError, ShardUnavailableError
from repro.rdbms import faults
from repro.rdbms.faults import FaultPlan, InjectedFault


@pytest.fixture(autouse=True)
def no_leftover_plan():
    yield
    faults.uninstall()
    faults.set_identity(shard=None, generation=0)


class TestFire:

    def test_no_plan_is_a_noop(self):
        assert faults.active() is None
        assert faults.fire('rpc.send', method='ping') is None

    def test_unknown_site_and_action_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match='unknown fault site'):
            plan._add('no.such.site', 'drop', 1, {})
        with pytest.raises(ValueError, match='unknown fault action'):
            plan._add('rpc.send', 'explode', 1, {})
        with pytest.raises(ValueError, match='hit must be'):
            plan.drop_rpc(hit=0)

    def test_hit_counting_and_once(self):
        plan = FaultPlan()
        plan.delay_rpc(method='ping', hit=2, seconds=0.0)
        with plan.installed():
            assert faults.fire('rpc.send', method='ping') is None
            assert faults.fire('rpc.send', method='ping') == 'delay'
            # once=True: disarmed after the first firing.
            assert faults.fire('rpc.send', method='ping') is None
        assert plan.fired() == 1
        assert plan.fired('rpc.send') == 1
        assert plan.fired('wal.fsync') == 0

    def test_recurring_rule_fires_every_match(self):
        plan = FaultPlan()
        plan.delay_rpc(method='ping', hit=1, seconds=0.0, once=False)
        with plan.installed():
            for _ in range(3):
                assert faults.fire('rpc.send', method='ping') == 'delay'
        assert plan.fired() == 3

    def test_match_is_exact_with_none_wildcards(self):
        plan = FaultPlan()
        plan.drop_rpc(shard=1, method='prepare_commit')
        with plan.installed():
            # Wrong method, wrong shard: no firing.
            assert faults.fire('rpc.send', method='ping', shard=1) is None
            assert faults.fire('rpc.send', method='prepare_commit',
                               shard=0) is None
            with pytest.raises(InjectedFault):
                faults.fire('rpc.send', method='prepare_commit', shard=1)
        plan2 = FaultPlan()
        plan2.drop_rpc()                         # all-wildcard rule
        with plan2.installed():
            with pytest.raises(InjectedFault):
                faults.fire('rpc.send', method='anything', shard=9)

    def test_identity_is_merged_into_context(self):
        """Worker identity (shard, generation) stamps every fired
        context, so a rule can spare restarted incarnations — the
        guard against crash-looping a kill rule."""
        plan = FaultPlan()
        plan.tear_frame(shard=2, generation=0)
        with plan.installed():
            faults.set_identity(shard=2, generation=1)   # a restart
            assert faults.fire('wal.append', kind='commit') is None
            faults.set_identity(shard=2, generation=0)   # the original
            # 'tear' is site-interpreted: fire() returns the name, the
            # call site (wal.append) decides what it means.
            assert faults.fire('wal.append', kind='commit') == 'tear'
        assert plan.fired('wal.append') == 1
        site, action, ctx = plan.log[0]
        assert (site, action) == ('wal.append', 'tear')
        assert ctx['shard'] == 2 and ctx['generation'] == 0

    def test_error_actions_raise_oserror_subclass(self):
        plan = FaultPlan()
        plan.fail_fsync()
        plan.fail_replica()
        with plan.installed():
            with pytest.raises(InjectedFault) as excinfo:
                faults.fire('wal.fsync')
            assert isinstance(excinfo.value, OSError)
            with pytest.raises(InjectedFault):
                faults.fire('replica.catch_up')

    def test_stall_is_returned_not_raised(self):
        plan = FaultPlan()
        plan.stall_replica()
        with plan.installed():
            assert faults.fire('replica.catch_up') == 'stall'
            assert faults.fire('replica.catch_up') is None  # once

    def test_installed_contextmanager_uninstalls_on_error(self):
        plan = FaultPlan()
        with pytest.raises(RuntimeError):
            with plan.installed():
                assert faults.active() is plan
                raise RuntimeError('boom')
        assert faults.active() is None

    def test_log_records_every_firing_in_order(self):
        plan = FaultPlan(seed=7)
        plan.delay_rpc(method='a', seconds=0.0)
        plan.delay_rpc(method='b', seconds=0.0)
        with plan.installed():
            faults.fire('rpc.send', method='b')
            faults.fire('rpc.send', method='a')
        assert [ctx['method'] for _, _, ctx in plan.log] == ['b', 'a']
        assert plan.seed == 7


class TestHookSites:
    """Each production hook actually consults the plan (smoke-level:
    the full behaviours live in the subsystem test files)."""

    def test_rpc_send_drop_breaks_the_channel(self, union_sources):
        from repro.rdbms.procpool import ProcessShard
        plan = FaultPlan()
        plan.drop_rpc(method='ping')
        shard = ProcessShard(0, union_sources, 'memory')
        try:
            with plan.installed():
                with pytest.raises(ShardUnavailableError):
                    shard.channel.call('ping')
            assert plan.fired('rpc.send') == 1
            assert shard.channel.dead            # like a real OSError
            assert shard.process.is_alive()      # worker side unharmed
            shard.restart()
            assert shard.channel.call('ping') == 'pong'
        finally:
            shard.close()

    def test_wal_append_without_plan_is_clean(self, tmp_path):
        from repro.rdbms.wal import WriteAheadLog
        with WriteAheadLog(tmp_path / 'w.wal', sync=False) as wal:
            assert wal.append('drop_view', 'a') == 1

    def test_worker_dispatch_hang_site(self, union_sources):
        """The dispatch hook honours a hang rule (tiny sleep here; the
        timeout behaviour is proven in test_procpool.py)."""
        from repro.rdbms.procpool import WorkerRuntime
        plan = FaultPlan()
        rule = plan.hang_worker(method='ping', seconds=0.0,
                                generation=None)
        runtime = WorkerRuntime(union_sources, 'memory')
        try:
            with plan.installed():
                assert runtime.dispatch('ping', ()) == 'pong'
            assert rule.fired == 1
        finally:
            runtime.close()
