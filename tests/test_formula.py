"""FO formula AST tests: constructors, free variables, substitution."""

from repro.fol.formula import (BOTTOM, TOP, And, Exists, FoAtom, FoCmp,
                               FoConst, FoEq, FoVar, Forall, Not, Or,
                               free_variables, make_and, make_exists,
                               make_or, substitute)


def atom(pred, *names):
    return FoAtom(pred, tuple(FoVar(n) if isinstance(n, str) and
                              n.isupper() else FoConst(n) for n in names))


class TestSmartConstructors:

    def test_and_flattens(self):
        result = make_and([atom('r', 'X'), make_and([atom('s', 'Y'),
                                                     atom('t', 'Z')])])
        assert isinstance(result, And)
        assert len(result.parts) == 3

    def test_and_unit_laws(self):
        assert make_and([TOP, atom('r', 'X')]) == atom('r', 'X')
        assert make_and([BOTTOM, atom('r', 'X')]) == BOTTOM
        assert make_and([]) == TOP

    def test_or_unit_laws(self):
        assert make_or([BOTTOM, atom('r', 'X')]) == atom('r', 'X')
        assert make_or([TOP, atom('r', 'X')]) == TOP
        assert make_or([]) == BOTTOM

    def test_single_element_collapse(self):
        assert make_and([atom('r', 'X')]) == atom('r', 'X')
        assert make_or([atom('r', 'X')]) == atom('r', 'X')

    def test_exists_drops_unused_vars(self):
        result = make_exists((FoVar('X'), FoVar('Y')), atom('r', 'X'))
        assert isinstance(result, Exists)
        assert result.variables == (FoVar('X'),)

    def test_exists_collapses_nested(self):
        inner = make_exists((FoVar('Y'),), atom('r', 'X', 'Y'))
        result = make_exists((FoVar('X'),), inner)
        assert isinstance(result, Exists)
        assert {v.name for v in result.variables} == {'X', 'Y'}
        assert not isinstance(result.inner, Exists)

    def test_exists_no_vars_is_identity(self):
        assert make_exists((), atom('r', 'X')) == atom('r', 'X')


class TestFreeVariables:

    def test_atom(self):
        assert free_variables(atom('r', 'X', 'Y')) == {'X', 'Y'}

    def test_quantifier_binds(self):
        formula = Exists((FoVar('X'),), atom('r', 'X', 'Y'))
        assert free_variables(formula) == {'Y'}

    def test_forall_binds(self):
        formula = Forall((FoVar('X'),), atom('r', 'X'))
        assert free_variables(formula) == set()

    def test_eq_and_cmp(self):
        assert free_variables(FoEq(FoVar('X'), FoConst(1))) == {'X'}
        assert free_variables(FoCmp('<', FoVar('X'), FoVar('Y'))) == \
            {'X', 'Y'}

    def test_connectives(self):
        formula = Not(make_and([atom('r', 'X'), atom('s', 'Y')]))
        assert free_variables(formula) == {'X', 'Y'}


class TestSubstitution:

    def test_basic(self):
        result = substitute(atom('r', 'X'), {'X': FoConst(5)})
        assert result == FoAtom('r', (FoConst(5),))

    def test_bound_variable_shadows(self):
        formula = Exists((FoVar('X'),), atom('r', 'X', 'Y'))
        result = substitute(formula, {'X': FoConst(1), 'Y': FoConst(2)})
        assert isinstance(result, Exists)
        assert result.inner == FoAtom('r', (FoVar('X'), FoConst(2)))

    def test_capture_avoidance(self):
        # Substituting Y := X under ∃X must rename the bound X.
        formula = Exists((FoVar('X'),), atom('r', 'X', 'Y'))
        result = substitute(formula, {'Y': FoVar('X')})
        assert isinstance(result, Exists)
        bound = result.variables[0]
        assert bound.name != 'X'
        assert result.inner == FoAtom('r', (bound, FoVar('X')))

    def test_combinators(self):
        conj = atom('r', 'X') & atom('s', 'X')
        assert isinstance(conj, And)
        disj = atom('r', 'X') | atom('s', 'X')
        assert isinstance(disj, Or)
        assert isinstance(~atom('r', 'X'), Not)
