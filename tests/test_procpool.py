"""Process-per-shard execution tests: the worker RPC runtime, the wire
protocol (pickle round-trips over every message type), worker-death
recovery (full-cluster rollback + restart), and shutdown hygiene (no
orphaned workers after close / GC / context-manager exit).

The randomized bit-identical-to-serial proof for process execution
lives in ``tests/fuzz/test_differential.py`` (the ``sharded-procs``
axis); these are the deterministic anchors.  The dispatch loop is
exercised both in-process (``serve_connection`` on a thread, so
coverage sees the worker side) and against real forked workers."""

import gc
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import (ConstraintViolation, ContradictionError,
                          DatalogSyntaxError, ReproError, SchemaError,
                          ShardUnavailableError, ValidationError)
from repro.rdbms import faults, procpool
from repro.rdbms.backends import MemoryBackend
from repro.rdbms.dml import Delete, Insert, Update
from repro.rdbms.engine import Engine
from repro.rdbms.procpool import (ProcessPool, ProcessShard,
                                  WorkerRuntime, _RpcChannel,
                                  serve_connection)
from repro.rdbms.sharded import ShardedEngine, _process_backend_specs

UNION_KEYS = {'v': 'a', 'r1': 'a', 'r2': 'a'}
_SRC = str(Path(__file__).resolve().parent.parent / 'src')


def _procs_pair(union_strategy, shards=3):
    """(single Engine, process-backed ShardedEngine) with identical
    starting state — the process twin of test_sharded's helper."""
    single = Engine(union_strategy.sources)
    sharded = ShardedEngine(union_strategy.sources, shards=shards,
                            shard_keys=UNION_KEYS,
                            execution='processes')
    for engine in (single, sharded):
        engine.load('r1', [(1,), (4,)])
        engine.load('r2', [(2,), (5,)])
        engine.define_view(union_strategy, validate_first=False)
    return single, sharded


# ---------------------------------------------------------------------------
# Wire protocol: every RPC message type round-trips through pickle
# ---------------------------------------------------------------------------


class TestWireProtocol:

    def _roundtrip(self, message):
        return pickle.loads(pickle.dumps(
            message, protocol=pickle.HIGHEST_PROTOCOL))

    def test_every_request_type_roundtrips(self, union_strategy):
        """One representative ``(seq, method, args)`` frame per worker
        RPC method survives pickling exactly (the coordinator→worker
        direction of the protocol)."""
        statements = [Insert((1,)), Delete({'a': 2}),
                      Update({'a': 3}, {'a': 1})]
        requests = [
            (1, 'begin', (7,)),
            (2, 'apply_statements', (7, 'v', statements)),
            (3, 'flush_reads', (7, 'v')),
            (4, 'txn_rows', (7, 'v')),
            (5, 'prepare_commit', (7,)),
            (6, 'apply_prepared', (7,)),
            (7, 'abort', (7,)),
            (8, 'rows', ('r1',)),
            (9, 'snapshot', ()),
            (10, 'load', ('r1', frozenset({(1,), (2,)}))),
            (11, 'count', ('r1',)),
            (12, 'has_cache', ('v',)),
            (13, 'define_view',
             (union_strategy, None, True, {'r1': 10, 'r2': 3})),
            (14, 'drop_view', ('v',)),
            (15, 'ping', ()),
            (16, 'close', ()),
        ]
        for request in requests:
            back = self._roundtrip(request)
            seq, method, args = back
            assert (seq, method) == request[:2]
            if method == 'define_view':
                strategy = args[0]
                assert strategy.view.name == union_strategy.view.name
                assert strategy.putdelta == union_strategy.putdelta
                assert args[1:] == request[2][1:]
            else:
                assert args == request[2]

    def test_every_reply_type_roundtrips(self, union_database):
        """Success replies carry frozensets, Database snapshots,
        strings, ints, bools and None — all exact through the pipe."""
        payloads = [None, 'pong', 42, True,
                    frozenset({(1, 'a'), (2, 'b')}),
                    union_database]
        for payload in payloads:
            seq, ok, back = self._roundtrip((3, True, payload))
            assert (seq, ok) == (3, True)
            assert back == payload

    @pytest.mark.parametrize('error', [
        SchemaError('no such relation'),
        ValidationError('putget failed'),
        DatalogSyntaxError('bad token', 3, 14),
        ContradictionError('r1', frozenset({(1,)})),
        ConstraintViolation('⊥ :- v(X), not X > 0.',
                            witness=frozenset({(-1,)})),
        ShardUnavailableError(2, 'worker died mid-request'),
    ])
    def test_every_error_class_roundtrips_exactly(self, error):
        """Error replies reconstruct the same class, message, and
        structured attributes (the ``__reduce__`` contract)."""
        _, ok, back = self._roundtrip((9, False, error))
        assert not ok
        assert type(back) is type(error)
        assert str(back) == str(error)
        assert isinstance(back, ReproError)
        for attr in ('relation', 'tuples', 'constraint', 'witness',
                     'shard', 'reason', 'line', 'column'):
            if hasattr(error, attr):
                assert getattr(back, attr) == getattr(error, attr)


# ---------------------------------------------------------------------------
# The dispatch loop, in-process (coverage sees the worker side)
# ---------------------------------------------------------------------------


@pytest.fixture
def served_runtime(union_strategy):
    """A ``WorkerRuntime`` served by ``serve_connection`` on a thread
    over a real pipe, driven through ``_RpcChannel`` — the whole RPC
    stack minus the fork."""
    runtime = WorkerRuntime(union_strategy.sources, 'memory')
    parent_conn, child_conn = multiprocessing.Pipe(duplex=True)

    def serve_and_hang_up():
        # A real worker's exit closes the pipe (EOF on the
        # coordinator); in-process the thread must do it explicitly.
        try:
            serve_connection(runtime, child_conn)
        finally:
            child_conn.close()

    thread = threading.Thread(target=serve_and_hang_up, daemon=True)
    thread.start()
    channel = _RpcChannel(parent_conn, shard=0)
    yield runtime, channel
    if not channel.dead:
        try:
            channel.call('close')
        except (ShardUnavailableError, ReproError):
            pass
    thread.join(timeout=5)
    parent_conn.close()


class TestServeConnection:

    def test_full_transaction_lifecycle(self, served_runtime,
                                        union_strategy):
        runtime, channel = served_runtime
        channel.call('load', 'r1', frozenset({(1,)}))
        channel.call('load', 'r2', frozenset({(2,)}))
        channel.call('define_view', union_strategy, None, True, {})
        channel.call('begin', 1)
        channel.call('apply_statements', 1, 'v', [Insert((3,))])
        assert channel.call('txn_rows', 1, 'v') == \
            frozenset({(1,), (2,), (3,)})
        channel.call('prepare_commit', 1)
        channel.call('apply_prepared', 1)
        assert channel.call('rows', 'r1') == frozenset({(1,), (3,)})
        assert channel.call('count', 'r1') == 2
        assert channel.call('has_cache', 'v')
        snapshot = channel.call('snapshot')
        assert set(snapshot['r2']) == {(2,)}
        channel.call('drop_view', 'v')
        assert channel.call('ping') == 'pong'

    def test_pipelined_requests_reply_in_order(self, served_runtime):
        """Several requests in flight at once; drains return each
        token's own reply even when collected out of order."""
        _, channel = served_runtime
        channel.call('begin', 5)
        t1 = channel.submit('load', 'r1', frozenset({(9,)}))
        t2 = channel.submit('ping')
        t3 = channel.submit('rows', 'r1')
        assert channel.drain(t3) == frozenset({(9,)})
        assert channel.drain(t1) is None
        assert channel.drain(t2) == 'pong'

    def test_abort_discards_staged_state(self, served_runtime):
        _, channel = served_runtime
        channel.call('load', 'r1', frozenset({(1,)}))
        channel.call('begin', 2)
        channel.call('apply_statements', 2, 'r1', [Insert((8,))])
        channel.call('abort', 2)
        assert channel.call('rows', 'r1') == frozenset({(1,)})
        # The slot really is gone: prepare on the aborted txn fails.
        with pytest.raises(KeyError):
            channel.call('prepare_commit', 2)

    def test_request_failure_is_a_reply_not_a_loop_exit(
            self, served_runtime):
        _, channel = served_runtime
        with pytest.raises(SchemaError):
            channel.call('rows', 'nonexistent')
        assert channel.call('ping') == 'pong'   # worker kept serving

    def test_unknown_and_private_methods_rejected(self, served_runtime):
        _, channel = served_runtime
        with pytest.raises(SchemaError, match='unknown worker RPC'):
            channel.call('no_such_method')
        with pytest.raises(SchemaError, match='unknown worker RPC'):
            channel.call('_workings')
        assert channel.call('ping') == 'pong'

    def test_unpicklable_result_becomes_schema_error(
            self, served_runtime):
        """A reply that will not serialise must not wedge the channel:
        the coordinator is blocked on exactly that seq."""
        runtime, channel = served_runtime
        runtime.opaque = lambda: (lambda: 1)      # result: a lambda
        with pytest.raises(SchemaError, match='did not serialise'):
            channel.call('opaque')
        assert channel.call('ping') == 'pong'

    def test_unpicklable_error_becomes_schema_error(
            self, served_runtime):
        runtime, channel = served_runtime
        def explode():
            raise RuntimeError(lambda: 1)         # unpicklable args
        runtime.explode = explode
        with pytest.raises(SchemaError, match='did not serialise'):
            channel.call('explode')
        assert channel.call('ping') == 'pong'

    def test_close_stops_the_loop(self, served_runtime):
        _, channel = served_runtime
        channel.call('close')
        with pytest.raises(ShardUnavailableError):
            channel.call('ping')
        assert channel.dead

    def test_submit_after_death_raises_immediately(
            self, served_runtime):
        _, channel = served_runtime
        channel.call('close')
        with pytest.raises(ShardUnavailableError):
            channel.call('ping')
        with pytest.raises(ShardUnavailableError):
            channel.submit('ping')


# ---------------------------------------------------------------------------
# Real worker processes
# ---------------------------------------------------------------------------


class TestProcessShard:

    def test_backend_instances_rejected(self, union_sources):
        """Connections must not cross the fork: only kind names."""
        backend = MemoryBackend(union_sources)
        with pytest.raises(SchemaError, match='kind name'):
            ProcessShard(0, union_sources, backend)

    def test_process_backend_specs_validate_coordinator_side(
            self, union_sources):
        with pytest.raises(SchemaError, match='unknown backend'):
            _process_backend_specs('no-such-backend', 2)
        with pytest.raises(SchemaError, match='2 shards'):
            _process_backend_specs(['memory'], 2)    # count mismatch
        backend = MemoryBackend(union_sources)
        with pytest.raises(SchemaError, match='not instances'):
            _process_backend_specs([backend, 'memory'], 2)
        # Uniform names fan out; None means the backend default.
        assert _process_backend_specs('sqlite', 3) == ['sqlite'] * 3
        assert _process_backend_specs(None, 2) == [None, None]

    def test_restart_replays_catalog(self, union_strategy):
        shard = ProcessShard(0, union_strategy.sources, 'memory')
        try:
            shard.load('r1', [(1,), (2,)])
            shard.load('r2', [(3,)])
            shard.define_view(union_strategy)
            os.kill(shard.process.pid, signal.SIGKILL)
            shard.process.join(5)
            assert not shard.alive
            shard.restart()
            assert shard.alive
            assert shard.rows('r1') == frozenset({(1,), (2,)})
            assert shard.rows('v') == frozenset({(1,), (2,), (3,)})
        finally:
            shard.close()

    def test_drop_view_trims_the_replay_journal(self, union_strategy):
        shard = ProcessShard(0, union_strategy.sources, 'memory')
        try:
            shard.define_view(union_strategy)
            shard.drop_view('v')
            assert shard._views == []
            os.kill(shard.process.pid, signal.SIGKILL)
            shard.process.join(5)
            shard.restart()
            assert not shard.has_cache('v')
        finally:
            shard.close()

    def test_close_is_idempotent_and_reaps(self, union_sources):
        shard = ProcessShard(0, union_sources, 'memory')
        process = shard.process
        shard.close()
        assert not process.is_alive()
        shard.close()                              # second close: no-op
        assert shard.process is None


class TestProcessPool:

    def test_pool_gc_reaps_workers(self, union_sources):
        """Dropping the last reference shuts the workers down (the
        ``weakref.finalize``) — no orphans from forgotten pools."""
        pool = ProcessPool(union_sources, ['memory', 'memory'])
        processes = [shard.process for shard in pool.shards]
        assert all(p.is_alive() for p in processes)
        del pool
        gc.collect()
        for process in processes:
            process.join(timeout=5)
        assert not any(p.is_alive() for p in processes)

    def test_shutdown_idempotent(self, union_sources):
        pool = ProcessPool(union_sources, ['memory'])
        pool.shutdown()
        assert not any(s.alive for s in pool.shards)
        pool.shutdown()                            # detach() already ran

    def test_restart_dead_reports_indices(self, union_sources):
        pool = ProcessPool(union_sources, ['memory', 'memory',
                                           'memory'])
        try:
            os.kill(pool.shards[1].process.pid, signal.SIGKILL)
            pool.shards[1].process.join(5)
            assert pool.restart_dead() == [1]
            assert all(s.alive for s in pool.shards)
            assert pool.restart_dead() == []
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# The process-backed sharded engine
# ---------------------------------------------------------------------------


class TestProcessExecution:

    def test_matches_single_engine(self, union_strategy):
        single, sharded = _procs_pair(union_strategy)
        try:
            for txn in ([('v', [Insert((3,)), Insert((6,))])],
                        [('v', [Delete({'a': 2})])],
                        [('v', [Update({'a': 9}, {'a': 4})])],
                        [('r1', [Insert((12,))]),
                         ('v', [Delete({'a': 9})])]):
                single.execute_many(txn)
                sharded.execute_many(txn)
                assert sharded.database() == single.database()
                assert frozenset(sharded.rows('v')) == \
                    frozenset(single.rows('v'))
        finally:
            single.close()
            sharded.close()

    def test_errors_raise_identically_and_roll_back(self,
                                                    luxury_strategy):
        single = Engine(luxury_strategy.sources)
        sharded = ShardedEngine(luxury_strategy.sources, shards=3,
                                shard_keys={'luxuryitems': 'iid',
                                            'items': 'iid'},
                                execution='processes')
        try:
            for engine in (single, sharded):
                engine.load('items', [(1, 'watch', 5000),
                                      (2, 'ring', 4000)])
                engine.define_view(luxury_strategy,
                                   validate_first=False)
            txn = [('luxuryitems', [Insert((7, 'socks', 8))])]
            for engine in (single, sharded):
                with pytest.raises(ConstraintViolation):
                    engine.execute_many(txn)
            assert sharded.database() == single.database()
        finally:
            single.close()
            sharded.close()

    def test_worker_killed_mid_prepare_rolls_back_cluster(
            self, union_strategy, monkeypatch):
        """The satellite's centerpiece: worker 1 dies *inside*
        ``prepare_commit`` → the whole cluster transaction rolls back
        (no shard applied), the coordinator raises a clean
        ``ShardUnavailableError``, and the restarted worker serves the
        next transaction."""
        original = Engine.prepare_commit

        def dying(self, working):
            if procpool.WORKER_INDEX == 1:
                os._exit(1)                 # mid-prepare, no reply sent
            return original(self, working)

        # Patch BEFORE the fork so workers inherit it; undo in the
        # parent immediately — the coordinator (and any worker
        # restarted later) runs the real prepare.
        monkeypatch.setattr(Engine, 'prepare_commit', dying)
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS,
                                execution='processes')
        monkeypatch.undo()
        try:
            sharded.load('r1', [(0,), (1,), (2,)])
            sharded.define_view(union_strategy, validate_first=False)
            before = sharded.database()
            txn = [('v', [Insert((3,)), Insert((4,)), Insert((5,))])]
            with pytest.raises(ShardUnavailableError):
                sharded.execute_many(txn)
            # Full-cluster rollback: shards 0 and 2 had prepared but
            # never applied; the restarted shard 1 replayed its loads.
            assert sharded.database() == before
            assert all(shard.alive for shard in sharded.shards)
            # Recovery: the same transaction now commits (the
            # restarted worker forked from the unpatched parent).
            sharded.execute_many(txn)
            assert frozenset(sharded.rows('v')) == \
                frozenset({(0,), (1,), (2,), (3,), (4,), (5,)})
        finally:
            sharded.close()

    def test_sigkill_surfaces_cleanly_and_pool_recovers(
            self, union_strategy):
        """An externally killed worker: the next transaction touching
        it fails with ``ShardUnavailableError`` (not a pickle or pipe
        traceback), aborts cluster-wide, and the one after succeeds."""
        single, sharded = _procs_pair(union_strategy)
        try:
            victim = sharded.shards[2]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(5)
            txn = [('v', [Insert((3,)), Insert((2,)),  # hits shard 2
                          Insert((8,))])]
            with pytest.raises(ShardUnavailableError):
                sharded.execute_many(txn)
            assert all(shard.alive for shard in sharded.shards)
            sharded.execute_many(txn)
            single.execute_many(txn)
            assert sharded.database() == single.database()
        finally:
            single.close()
            sharded.close()

    def test_close_leaves_no_workers(self, union_strategy):
        _, sharded = _procs_pair(union_strategy)
        processes = [shard.process for shard in sharded.shards]
        sharded.close()
        assert not any(p.is_alive() for p in processes)
        sharded.close()                            # idempotent

    def test_context_manager_closes_workers(self, union_sources):
        with ShardedEngine(union_sources, shards=2,
                           shard_keys=UNION_KEYS,
                           execution='processes') as sharded:
            processes = [shard.process for shard in sharded.shards]
            assert all(p.is_alive() for p in processes)
        assert not any(p.is_alive() for p in processes)

    def test_engine_context_manager(self, union_sources):
        with Engine(union_sources) as engine:
            engine.load('r1', [(1,)])
            assert frozenset(engine.rows('r1')) == {(1,)}

    def test_thread_mode_context_manager(self, union_sources):
        with ShardedEngine(union_sources, shards=2,
                           shard_keys=UNION_KEYS) as sharded:
            sharded.load('r1', [(1,), (2,)])
        # Closed: the inner engines' backends are shut down.

    def test_worker_index_is_none_in_coordinator(self):
        assert procpool.WORKER_INDEX is None

    def test_rpc_timeout_surfaces_wedged_worker(self, union_strategy):
        """The liveness satellite: a worker that *hangs* (alive, not
        replying) must abort the cluster transaction with
        ``ShardUnavailableError`` instead of blocking the coordinator
        forever — and the pool terminates and replaces it."""
        plan = faults.FaultPlan()
        plan.hang_worker(shard=1, method='prepare_commit', seconds=600)
        with plan.installed():
            sharded = ShardedEngine(union_strategy.sources, shards=3,
                                    shard_keys=UNION_KEYS,
                                    execution='processes',
                                    rpc_timeout=0.5)
        try:
            sharded.load('r1', [(0,), (1,), (2,)])
            sharded.define_view(union_strategy, validate_first=False)
            txn = [('v', [Insert((3,)), Insert((4,)), Insert((5,))])]
            with pytest.raises(ShardUnavailableError,
                               match='wedged|no reply'):
                sharded.execute_many(txn)
            # The wedged worker was reaped and replaced; the cluster
            # rolled back and keeps serving.
            assert all(shard.alive for shard in sharded.shards)
            sharded.execute_many(txn)
            assert frozenset(sharded.rows('v')) >= {(3,), (4,), (5,)}
        finally:
            sharded.close()

    def test_transient_retry_masks_prepare_death(self, union_strategy,
                                                 monkeypatch):
        """A worker killed mid-prepare aborts the transaction cleanly;
        with ``transient_retries`` the coordinator restarts it and
        re-runs — the client never sees the failure."""
        original = Engine.prepare_commit

        def dying(self, working):
            if procpool.WORKER_INDEX == 1:
                os._exit(1)
            return original(self, working)

        monkeypatch.setattr(Engine, 'prepare_commit', dying)
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS,
                                execution='processes',
                                transient_retries=2,
                                retry_backoff=0.01)
        monkeypatch.undo()
        try:
            sharded.load('r1', [(0,), (1,), (2,)])
            sharded.define_view(union_strategy, validate_first=False)
            sharded.execute_many(
                [('v', [Insert((3,)), Insert((4,)), Insert((5,))])])
            assert frozenset(sharded.rows('v')) == \
                frozenset({(0,), (1,), (2,), (3,), (4,), (5,)})
        finally:
            sharded.close()

    def test_dropped_rpc_is_retried_transparently(self, union_strategy):
        """A dropped RPC frame (coordinator-side send failure) breaks
        the channel exactly like a real ``OSError``; the retry layer
        restarts the worker and the transaction commits."""
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS,
                                execution='processes',
                                transient_retries=1,
                                retry_backoff=0.01)
        plan = faults.FaultPlan()
        plan.drop_rpc(shard=2, method='prepare_commit')
        try:
            sharded.load('r1', [(0,), (1,), (2,)])
            sharded.define_view(union_strategy, validate_first=False)
            with plan.installed():   # rpc.send fires coordinator-side
                sharded.execute_many(
                    [('v', [Insert((3,)), Insert((4,)), Insert((5,))])])
            assert plan.fired('rpc.send') == 1
            assert frozenset(sharded.rows('v')) == \
                frozenset({(0,), (1,), (2,), (3,), (4,), (5,)})
        finally:
            sharded.close()

    def test_duplicated_rpc_frame_executes_once(self, union_strategy):
        """At-least-once transport: a frame sent twice must be
        absorbed by the worker's sequence dedup — dispatching it again
        would double-execute the method AND desynchronise the reply
        stream (two replies for one token poisons every later drain)."""
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS,
                                execution='processes')
        plan = faults.FaultPlan()
        plan.dup_rpc(method='apply_statements')
        try:
            sharded.load('r1', [(0,), (1,), (2,)])
            sharded.define_view(union_strategy, validate_first=False)
            with plan.installed():
                sharded.execute_many(
                    [('v', [Insert((3,)), Insert((4,)), Insert((5,))])])
                # The channel stays aligned: later calls still pair
                # request to reply correctly.
                assert frozenset(sharded.rows('v')) == \
                    frozenset({(0,), (1,), (2,), (3,), (4,), (5,)})
            assert plan.fired('rpc.send') == 1
            sharded.execute_many([('v', [Insert((6,))])])
            assert (6,) in sharded.rows('v')
        finally:
            sharded.close()

    def test_reordered_rpc_frames_dispatch_fifo(self, union_strategy):
        """A held-back ``begin`` delivered after its transaction's
        ``apply_statements`` must be re-sequenced worker-side — the
        dispatch order is FIFO by sequence number, not arrival order
        (dispatching the statements first would hit a missing
        transaction slot)."""
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS,
                                execution='processes')
        plan = faults.FaultPlan()
        plan.reorder_rpc(method='begin')
        try:
            sharded.load('r1', [(0,), (1,), (2,)])
            sharded.define_view(union_strategy, validate_first=False)
            with plan.installed():
                sharded.execute_many(
                    [('v', [Insert((3,)), Insert((4,)), Insert((5,))])])
            assert plan.fired('rpc.send') == 1
            assert frozenset(sharded.rows('v')) == \
                frozenset({(0,), (1,), (2,), (3,), (4,), (5,)})
        finally:
            sharded.close()

    def test_no_orphans_at_interpreter_exit(self, tmp_path):
        """A script that builds a pool and exits WITHOUT closing must
        still reap its workers (the atexit side of the finalizer) —
        asserted by the interpreter actually exiting promptly."""
        script = tmp_path / 'leak.py'
        script.write_text(
            'import sys\n'
            f'sys.path.insert(0, {str(_SRC)!r})\n'
            'from repro.relational.schema import DatabaseSchema\n'
            'from repro.rdbms.procpool import ProcessPool\n'
            'schema = DatabaseSchema.build(r1={"a": "int"})\n'
            'pool = ProcessPool(schema, ["memory", "memory"])\n'
            'print(len([s for s in pool.shards if s.alive]))\n',
            encoding='utf-8')
        result = subprocess.run([sys.executable, str(script)],
                                capture_output=True, text=True,
                                timeout=60)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == '2'


# ---------------------------------------------------------------------------
# Crash tolerance: in-worker WALs, deterministic kills, apply repair
# ---------------------------------------------------------------------------


class TestWalBackedWorkers:
    """The tentpole: each worker owns ``shard-<i>.wal``, the fsynced
    append is its commit point, restart replays the committed prefix,
    and a worker killed mid-apply is repaired from its prepare reply —
    SIGKILL anywhere loses zero committed transactions."""

    TXNS = (
        [('v', [Insert((7,)), Insert((8,))])],          # shards 1, 2
        [('v', [Delete({'a': 1})])],                    # shard 1
        [('v', [Insert((9,))]), ('r1', [Insert((12,))])],
        [('v', [Update({'a': 13}, {'a': 8})])],         # key-moving
    )

    def _wal_cluster(self, union_strategy, wal_dir,
                     execution='processes', **kwargs):
        engine = ShardedEngine(union_strategy.sources, shards=3,
                               shard_keys=UNION_KEYS,
                               execution=execution,
                               wal_dir=wal_dir, wal_sync=False,
                               **kwargs)
        engine.load('r1', [(0,), (1,), (2,)])
        engine.load('r2', [(4,), (5,)])
        engine.define_view(union_strategy, validate_first=False)
        return engine

    def test_commit_lsns_uniform_across_executions(self, union_strategy,
                                                   tmp_path):
        """``commit_lsns()`` works identically for thread and process
        execution: same routing → same per-shard LSN vector."""
        threads = self._wal_cluster(union_strategy, tmp_path / 't',
                                    execution='threads')
        procs = self._wal_cluster(union_strategy, tmp_path / 'p')
        try:
            for txn in self.TXNS:
                threads.execute_many(txn)
                procs.execute_many(txn)
            assert procs.commit_lsns() == threads.commit_lsns()
            assert any(procs.commit_lsns())
            assert procs.commit_lsn == procs.commit_lsns()  # alias
        finally:
            threads.close()
            procs.close()

    def test_external_sigkill_loses_no_committed_transaction(
            self, union_strategy, tmp_path):
        """Kill a worker from outside between transactions: the next
        touching transaction aborts (and auto-restarts the worker from
        its log), after which state and LSNs match the thread-mode
        oracle exactly — committed deltas survived, unlike the
        catalog-replay fallback."""
        oracle = self._wal_cluster(union_strategy, tmp_path / 'o',
                                   execution='threads')
        victim = self._wal_cluster(union_strategy, tmp_path / 'v')
        try:
            first = self.TXNS[0]
            oracle.execute_many(first)
            victim.execute_many(first)
            os.kill(victim.shards[1].process.pid, signal.SIGKILL)
            victim.shards[1].process.join(5)
            nxt = self.TXNS[1]
            oracle.execute_many(nxt)
            with pytest.raises(ShardUnavailableError):
                victim.execute_many(nxt)         # abort + restart
            victim.execute_many(nxt)             # recovered worker
            assert victim.shards[1].generation == 1
            assert victim.commit_lsns() == oracle.commit_lsns()
            assert victim.database() == oracle.database()
            assert frozenset(victim.rows('v')) \
                == frozenset(oracle.rows('v'))
        finally:
            oracle.close()
            victim.close()

    def test_wal_shards_skip_the_catalog_journal(self, union_strategy,
                                                 tmp_path):
        victim = self._wal_cluster(union_strategy, tmp_path / 'v')
        try:
            for shard in victim.shards:
                assert shard._loads == {}       # the log IS the journal
                assert shard._views == []
        finally:
            victim.close()

    def test_kill_mid_apply_is_repaired_bit_identical(
            self, union_strategy, tmp_path):
        """The acceptance criterion: SIGKILL a worker *inside* the
        apply phase (before its commit-point append) mid-workload.  The
        coordinator repairs the shard from its prepare reply — the
        transaction SUCCEEDS — and the full workload's committed state
        and LSN vector are bit-identical to the fault-free oracle."""
        oracle = self._wal_cluster(union_strategy, tmp_path / 'o',
                                   execution='threads')
        plan = faults.FaultPlan()
        # Shard 1's second apply dispatch: mid-workload, after it has
        # already committed once.  The kill fires BEFORE the append —
        # the hardest case: siblings applied, this shard did not.
        plan.kill_worker(shard=1, method='apply_prepared', hit=2)
        with plan.installed():
            victim = self._wal_cluster(union_strategy, tmp_path / 'v')
        try:
            for txn in self.TXNS:
                oracle.execute_many(txn)
                victim.execute_many(txn)        # no exception: repaired
            assert victim.shards[1].generation == 1   # kill DID happen
            assert victim.commit_lsns() == oracle.commit_lsns()
            assert victim.database() == oracle.database()
            assert frozenset(victim.rows('v')) \
                == frozenset(oracle.rows('v'))
            assert victim.shard_rows('v') == oracle.shard_rows('v')
        finally:
            oracle.close()
            victim.close()

    def test_torn_frame_mid_apply_is_repaired(self, union_strategy,
                                              tmp_path):
        """A crash mid-``write(2)``: half the commit frame reaches the
        log, the worker dies.  Recovery truncates the torn tail (the
        append never committed) and the repair path re-commits — same
        oracle-identical outcome."""
        oracle = self._wal_cluster(union_strategy, tmp_path / 'o',
                                   execution='threads')
        plan = faults.FaultPlan()
        # Shard 1's WAL appends: load(r1) is 1, load(r2) is 2,
        # define_view is 3, first commit is 4 — tear the 5th append,
        # i.e. the second commit, mid-workload.
        plan.tear_frame(shard=1, hit=5)
        with plan.installed():
            victim = self._wal_cluster(union_strategy, tmp_path / 'v')
        try:
            for txn in self.TXNS:
                oracle.execute_many(txn)
                victim.execute_many(txn)
            assert victim.shards[1].generation == 1
            assert victim.commit_lsns() == oracle.commit_lsns()
            assert victim.database() == oracle.database()
        finally:
            oracle.close()
            victim.close()

    def test_fsync_error_kills_worker_and_repair_recovers(
            self, union_strategy, tmp_path):
        """A failed fsync poisons the worker's log; the worker dies
        (``os._exit(3)``) rather than serve non-durable commits, and
        the repair path restarts it and re-commits."""
        oracle = self._wal_cluster(union_strategy, tmp_path / 'o',
                                   execution='threads')
        plan = faults.FaultPlan()
        # Shard 1's 5th fsync = its second commit (see above).
        plan.fail_fsync(shard=1, hit=5)
        with plan.installed():
            victim = self._wal_cluster(union_strategy, tmp_path / 'v')
        try:
            for txn in self.TXNS:
                oracle.execute_many(txn)
                victim.execute_many(txn)
            assert victim.shards[1].generation == 1
            assert victim.commit_lsns() == oracle.commit_lsns()
            assert victim.database() == oracle.database()
        finally:
            oracle.close()
            victim.close()
