"""Sharded engine tests: partitioners, placement rules, statement
routing (including cross-shard key moves), scatter-gather reads, mixed
per-shard backends, aggregated planner stats, and multi-shard
atomicity.  The randomized equivalence proof lives in
``tests/fuzz/test_differential.py``; these are the deterministic
anchors."""

import pytest

from repro.core.strategy import UpdateStrategy
from repro.errors import ConstraintViolation, SchemaError
from repro.rdbms.backends import MemoryBackend, SQLiteBackend
from repro.rdbms.engine import Engine
from repro.rdbms.sharded import (HashPartitioner, RangePartitioner,
                                 ShardedEngine)
from repro.relational.schema import DatabaseSchema

UNION_KEYS = {'v': 'a', 'r1': 'a', 'r2': 'a'}


def _union_pair(union_strategy, shards=3, backends=None, keys=UNION_KEYS):
    """(single Engine, ShardedEngine) with identical starting state."""
    single = Engine(union_strategy.sources)
    sharded = ShardedEngine(union_strategy.sources, shards=shards,
                            backends=backends, shard_keys=keys)
    for engine in (single, sharded):
        engine.load('r1', [(1,), (4,)])
        engine.load('r2', [(2,), (5,)])
        engine.define_view(union_strategy, validate_first=False)
    return single, sharded


def _luxury_sharded(luxury_strategy, backends=('memory', 'sqlite',
                                               'memory')):
    sharded = ShardedEngine(luxury_strategy.sources, shards=len(backends),
                            backends=list(backends),
                            shard_keys={'luxuryitems': 'iid',
                                        'items': 'iid'})
    sharded.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                           (3, 'cap', 10)])
    sharded.define_view(luxury_strategy, validate_first=False)
    return sharded


class TestPartitioners:

    def test_hash_int_is_modular(self):
        part = HashPartitioner(4)
        assert [part.shard_of(i) for i in range(8)] == [0, 1, 2, 3,
                                                        0, 1, 2, 3]

    def test_hash_strings_stable_and_in_range(self):
        part = HashPartitioner(3)
        shards = {s: part.shard_of(s) for s in ('alice', 'bob', 'carol')}
        assert all(0 <= v < 3 for v in shards.values())
        # Stability: same mapping on a fresh partitioner (no process
        # hash seed involvement).
        again = HashPartitioner(3)
        assert {s: again.shard_of(s) for s in shards} == shards

    def test_range_partitioner(self):
        part = RangePartitioner([10, 20])
        assert part.n_shards == 3
        assert part.shard_of(-5) == 0
        assert part.shard_of(10) == 1
        assert part.shard_of(19) == 1
        assert part.shard_of(20) == 2

    def test_range_boundaries_must_be_sorted(self):
        with pytest.raises(SchemaError):
            RangePartitioner([20, 10])

    def test_range_boundaries_must_be_strictly_increasing(self):
        """A duplicate boundary would declare a shard that can never
        own a row."""
        with pytest.raises(SchemaError, match='strictly increasing'):
            RangePartitioner([5, 5])

    def test_equal_values_route_equally(self):
        """x == y must imply shard_of(x) == shard_of(y): WHERE clauses
        match rows with ==, where 1 == 1.0 == True == Decimal(1)."""
        from decimal import Decimal
        from fractions import Fraction
        part = HashPartitioner(3)
        assert part.shard_of(1) == part.shard_of(1.0) \
            == part.shard_of(True) == part.shard_of(Decimal(1))
        assert part.shard_of(0) == part.shard_of(0.0) == part.shard_of(False)
        assert part.shard_of(4.0) == part.shard_of(4)
        assert part.shard_of(1.5) == part.shard_of(Decimal('1.5')) \
            == part.shard_of(Fraction(3, 2))
        assert part.shard_of(float('inf')) \
            == part.shard_of(Decimal('Infinity'))
        assert part.shard_of(complex(1, 0)) == part.shard_of(1)
        assert part.shard_of('1') != 'unrouted'   # strings stay strings
        ranged = RangePartitioner([2, 5])
        assert ranged.shard_of(1) == ranged.shard_of(1.0) \
            == ranged.shard_of(True)

    def test_partitioner_shard_count_must_match(self, union_sources):
        with pytest.raises(SchemaError):
            ShardedEngine(union_sources, shards=4,
                          partitioner=RangePartitioner([10]))


class TestConstruction:

    def test_shard_count_inferred_from_backends(self, union_sources):
        sharded = ShardedEngine(union_sources,
                                backends=['memory', 'sqlite', 'memory'])
        assert sharded.n_shards == 3
        kinds = [type(e.backend) for e in sharded.engines]
        assert kinds == [MemoryBackend, SQLiteBackend, MemoryBackend]

    def test_shard_count_inferred_from_partitioner(self, union_sources):
        sharded = ShardedEngine(union_sources,
                                partitioner=RangePartitioner([3, 6]))
        assert sharded.n_shards == 3

    def test_backend_count_mismatch_rejected(self, union_sources):
        with pytest.raises(SchemaError):
            ShardedEngine(union_sources, shards=2,
                          backends=['memory', 'memory', 'memory'])

    def test_shared_backend_instance_rejected(self, union_sources):
        """One Backend instance cannot serve every shard — the shards
        would all write the same tables."""
        with pytest.raises(SchemaError, match='own storage'):
            ShardedEngine(union_sources, shards=2,
                          backends=MemoryBackend(union_sources))
        shared = MemoryBackend(union_sources)
        with pytest.raises(SchemaError, match='more than once'):
            ShardedEngine(union_sources, backends=[shared, shared])

    def test_unknown_shard_key_attribute_rejected(self, union_sources):
        with pytest.raises(SchemaError):
            ShardedEngine(union_sources, shards=2,
                          shard_keys={'r1': 'nope'})

    def test_global_shard_out_of_range(self, union_sources):
        with pytest.raises(SchemaError):
            ShardedEngine(union_sources, shards=2, global_shard=5)

    def test_load_splits_by_key(self, union_sources):
        sharded = ShardedEngine(union_sources, shards=2,
                                shard_keys={'r1': 'a'})
        sharded.load('r1', [(0,), (1,), (2,), (3,)])
        assert sharded.shard_rows('r1') == (frozenset({(0,), (2,)}),
                                            frozenset({(1,), (3,)}))
        assert sharded.rows('r1') == {(0,), (1,), (2,), (3,)}
        assert sharded.count('r1') == 4

    def test_load_with_invalid_row_leaves_all_shards_untouched(self):
        """Bulk-load validates every row before replacing any shard —
        like the single engine, an invalid row aborts with the old
        contents intact everywhere."""
        sources = DatabaseSchema.build(
            items={'iid': 'int', 'iname': 'string'})
        sharded = ShardedEngine(sources, shards=3,
                                shard_keys={'items': 'iid'})
        sharded.load('items', [(1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')])
        before = sharded.shard_rows('items')
        with pytest.raises(SchemaError):
            sharded.load('items', [(9, 'x'), (10, 'y'), (14, 99)])
        assert sharded.shard_rows('items') == before

    def test_unkeyed_base_is_global(self, union_sources):
        sharded = ShardedEngine(union_sources, shards=2,
                                shard_keys={'r1': 'a'})
        sharded.load('r2', [(1,), (2,)])
        assert sharded.placement('r2') == 0
        assert sharded.shard_rows('r2') == (frozenset({(1,), (2,)}),
                                            frozenset())


class TestPlacement:

    def test_co_partitioned_view_is_shard_local(self, union_strategy):
        _single, sharded = _union_pair(union_strategy)
        assert sharded.placement('v') == 'partitioned'
        assert sharded.shard_key('v') == 'a'

    def test_unkeyed_view_goes_global_and_demotes_bases(
            self, union_strategy):
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys={'r1': 'a', 'r2': 'a'})
        sharded.load('r1', [(0,), (1,), (2,)])
        sharded.define_view(union_strategy, validate_first=False)
        assert sharded.placement('v') == 0
        assert sharded.placement('r1') == 0
        # Demotion migrated the partitioned rows to the global shard.
        assert sharded.shard_rows('r1') == (frozenset({(0,), (1,), (2,)}),
                                            frozenset(), frozenset())
        sharded.insert('v', (7,))
        assert sharded.shard_rows('r1')[0] == {(0,), (1,), (2,), (7,)}

    def test_differently_keyed_source_forces_global(self):
        sources = DatabaseSchema.build(
            pairs={'a': 'int', 'b': 'int'})
        strategy = UpdateStrategy.parse('w', sources, """
            +pairs(X, Y) :- w(X, Y), not pairs(X, Y).
            -pairs(X, Y) :- pairs(X, Y), not w(X, Y).
        """, expected_get='w(X, Y) :- pairs(X, Y).')
        # The view is keyed on `b`, the base on `a`: update_closure
        # writes a relation partitioned on a different key.
        sharded = ShardedEngine(sources, shards=2,
                                shard_keys={'w': 'b', 'pairs': 'a'})
        sharded.load('pairs', [(1, 2), (2, 3)])
        sharded.define_view(strategy, validate_first=False)
        assert sharded.placement('w') == 0
        assert sharded.placement('pairs') == 0
        sharded.insert('w', (5, 6))
        assert (5, 6) in sharded.rows('pairs')

    def test_misaligned_join_variable_forces_global(self, union_sources):
        """Matching key *names* is not enough: a putback rule that
        joins through a variable other than the view key cannot be
        routed shard-locally — it must fall back to global placement
        and still match the single engine."""
        bad = UpdateStrategy.parse('v', union_sources, """
            +r1(X) :- r2(X), v(Y), not r1(X).
            -r1(X) :- r1(X), not r2(X).
        """, expected_get='v(X) :- r1(X).')
        sharded = ShardedEngine(union_sources, shards=2,
                                shard_keys={'v': 'a', 'r1': 'a',
                                            'r2': 'a'})
        single = Engine(union_sources)
        for engine in (sharded, single):
            engine.load('r1', [])
            engine.load('r2', [(1,), (3,)])
            engine.define_view(bad, validate_first=False)
        assert sharded.placement('v') == 0
        for engine in (sharded, single):
            engine.insert('v', (4,))
        assert sharded.database() == single.database()

    def test_key_dropping_intermediate_forces_global(self):
        """An intermediate predicate that projects the key away breaks
        shard-local evaluability even when every relation is keyed on
        the same attribute."""
        sources = DatabaseSchema.build(t={'k': 'int', 'p': 'int'})
        dropping = UpdateStrategy.parse('tv', sources, """
            seen(P) :- t(_, P).
            +t(K, P) :- tv(K, P), not t(K, P).
            -t(K, P) :- t(K, P), seen(P), not tv(K, P).
        """, expected_get='tv(K, P) :- t(K, P).')
        sharded = ShardedEngine(sources, shards=2,
                                shard_keys={'tv': 'k', 't': 'k'})
        sharded.define_view(dropping, validate_first=False)
        assert sharded.placement('tv') == 0

    def test_key_carrying_intermediate_stays_local(self):
        """The Figure-6c shape: intermediates that carry the key
        (``inflow``/``open_task``-style) keep the view shard-local."""
        sources = DatabaseSchema.build(t={'k': 'int', 'p': 'int'})
        carrying = UpdateStrategy.parse('tv', sources, """
            big(K, P) :- t(K, P), P > 10.
            +t(K, P) :- tv(K, P), not t(K, P).
            -t(K, P) :- big(K, P), not tv(K, P).
        """, expected_get='tv(K, P) :- t(K, P), P > 10.')
        sharded = ShardedEngine(sources, shards=2,
                                shard_keys={'tv': 'k', 't': 'k'})
        sharded.define_view(carrying, validate_first=False)
        assert sharded.placement('tv') == 'partitioned'

    def test_demotion_conflict_with_shard_local_view(self, union_sources):
        local = UpdateStrategy.parse('w', union_sources, """
            +r1(X) :- w(X), not r1(X).
            -r1(X) :- r1(X), not w(X).
        """, expected_get='w(X) :- r1(X).')
        cross = UpdateStrategy.parse('x', union_sources, """
            +r1(X) :- x(X), not r1(X).
            -r1(X) :- r1(X), not x(X).
        """, expected_get='x(X) :- r1(X).')
        sharded = ShardedEngine(union_sources, shards=2,
                                shard_keys={'w': 'a', 'r1': 'a'})
        sharded.define_view(local, validate_first=False)
        with pytest.raises(SchemaError, match='shard-local'):
            sharded.define_view(cross, validate_first=False)

    def test_unknown_updated_relation_rejected(self, union_sources):
        bad = UpdateStrategy.parse('w', union_sources, """
            +r9(X) :- w(X), not r9(X).
        """, expected_get='w(X) :- r1(X).')
        sharded = ShardedEngine(union_sources, shards=2)
        with pytest.raises(SchemaError, match='unknown relation'):
            sharded.define_view(bad, validate_first=False)

    def test_duplicate_view_rejected(self, union_strategy):
        _single, sharded = _union_pair(union_strategy)
        with pytest.raises(SchemaError):
            sharded.define_view(union_strategy, validate_first=False)

    def test_failed_define_view_leaves_partitioning_intact(
            self, union_strategy):
        """A define_view that fails after the placement decision must
        not leave base tables demoted to the global shard."""
        from repro.errors import ValidationError
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys={'r1': 'a', 'r2': 'a'})
        sharded.load('r1', [(0,), (1,), (2,)])
        before = sharded.shard_rows('r1')
        no_get = UpdateStrategy.parse('v', union_strategy.sources, """
            +r1(X) :- v(X), not r1(X).
            -r1(X) :- r1(X), not v(X).
        """)                          # no expected_get, no validation
        with pytest.raises(ValidationError):
            sharded.define_view(no_get, validate_first=False)
        assert sharded.placement('r1') == 'partitioned'
        assert sharded.shard_rows('r1') == before

    def test_mistyped_view_key_attribute_raises(self, union_strategy):
        """A view key naming a nonexistent attribute is a configuration
        error at define_view — never a silent global demotion."""
        sharded = ShardedEngine(union_strategy.sources, shards=2,
                                shard_keys={'v': 'aa', 'r1': 'a',
                                            'r2': 'a'})
        sharded.load('r1', [(0,), (1,)])
        with pytest.raises(SchemaError, match='not an attribute'):
            sharded.define_view(union_strategy, validate_first=False)
        assert sharded.placement('r1') == 'partitioned'

    def test_partial_define_view_failure_rolls_back(self, union_strategy,
                                                    monkeypatch):
        """A per-shard define_view failure mid-loop must unregister the
        view from the shards that already accepted it, so the name is
        not wedged."""
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys=UNION_KEYS)
        boom = RuntimeError('shard 2 is on fire')
        original = Engine.define_view

        def failing(engine_self, *args, **kwargs):
            if engine_self is sharded.engines[2]:
                raise boom
            return original(engine_self, *args, **kwargs)

        monkeypatch.setattr(Engine, 'define_view', failing)
        with pytest.raises(RuntimeError):
            sharded.define_view(union_strategy, validate_first=False)
        monkeypatch.setattr(Engine, 'define_view', original)
        for engine in sharded.engines:
            assert not engine.is_view('v')
        # The name is free again: a retry succeeds.
        sharded.define_view(union_strategy, validate_first=False)
        assert sharded.placement('v') == 'partitioned'

    def test_failing_shard_itself_is_unregistered(self, union_strategy,
                                                  monkeypatch):
        """Engine.define_view adds the catalog entry before the backend
        hooks run; a backend failure must not leave the view half
        registered on the failing shard either."""
        sharded = ShardedEngine(union_strategy.sources, shards=2,
                                shard_keys=UNION_KEYS)
        target = sharded.engines[1].backend

        def boom(entry):
            raise RuntimeError('lowering failed')

        monkeypatch.setattr(target, 'register_view', boom)
        with pytest.raises(RuntimeError):
            sharded.define_view(union_strategy, validate_first=False)
        monkeypatch.undo()
        assert not any(engine.is_view('v') for engine in sharded.engines)
        sharded.define_view(union_strategy, validate_first=False)
        assert sharded.placement('v') == 'partitioned'

    def test_failed_demotion_restores_partitioned_layout(
            self, union_strategy, monkeypatch):
        """A migration failure during global demotion restores the
        key-partitioned row layout and unregisters the view — no
        duplicated rows, no wedged name."""
        bad = UpdateStrategy.parse('v', union_strategy.sources, """
            +r1(X) :- r2(X), v(Y), not r1(X).
            -r1(X) :- r1(X), not r2(X).
        """, expected_get='v(X) :- r1(X).')   # misaligned → global
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys={'v': 'a', 'r1': 'a',
                                            'r2': 'a'})
        sharded.load('r1', [(0,), (1,), (2,)])
        sharded.load('r2', [(3,), (4,)])
        before_r1 = sharded.shard_rows('r1')
        original = Engine.load
        calls = {'n': 0}

        def failing(engine_self, name, rows):
            calls['n'] += 1
            if calls['n'] == 2:          # mid-migration
                raise RuntimeError('disk full')
            return original(engine_self, name, rows)

        monkeypatch.setattr(Engine, 'load', failing)
        with pytest.raises(RuntimeError):
            sharded.define_view(bad, validate_first=False)
        monkeypatch.undo()
        assert sharded.shard_rows('r1') == before_r1
        assert sharded.placement('r1') == 'partitioned'
        assert not any(engine.is_view('v') for engine in sharded.engines)
        assert sharded.rows('r1') == {(0,), (1,), (2,)}

    def test_partial_demotion_failure_restores_all_bases(
            self, union_strategy, monkeypatch):
        """When the SECOND base's demotion fails, the first —
        already-demoted — base must be re-partitioned too: a failed
        define_view leaves no lasting degradation."""
        bad = UpdateStrategy.parse('v', union_strategy.sources, """
            +r1(X) :- r2(X), v(Y), not r1(X).
            -r1(X) :- r1(X), not r2(X).
        """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
        sharded = ShardedEngine(union_strategy.sources, shards=3,
                                shard_keys={'v': 'a', 'r1': 'a',
                                            'r2': 'a'})
        sharded.load('r1', [(0,), (1,), (2,)])
        sharded.load('r2', [(3,), (4,), (5,)])
        before = (sharded.shard_rows('r1'), sharded.shard_rows('r2'))
        original = Engine.load
        calls = {'n': 0}

        def failing(engine_self, name, rows):
            calls['n'] += 1
            if calls['n'] == 5:          # mid-migration of base #2
                raise RuntimeError('disk full')
            return original(engine_self, name, rows)

        monkeypatch.setattr(Engine, 'load', failing)
        with pytest.raises(RuntimeError):
            sharded.define_view(bad, validate_first=False)
        monkeypatch.undo()
        assert sharded.placement('r1') == 'partitioned'
        assert sharded.placement('r2') == 'partitioned'
        assert (sharded.shard_rows('r1'),
                sharded.shard_rows('r2')) == before
        assert not any(engine.is_view('v') for engine in sharded.engines)

    def test_report_view_definition_constrains_placement(self):
        """Placement must analyse the get program the engine will
        actually evaluate — a certified report.view_definition reading
        relations beyond the putback must pull them into the global
        demotion set."""
        from repro.datalog.parser import parse_program

        class CertifiedReport:
            def __init__(self, view_definition):
                self.view_definition = view_definition

            def raise_if_invalid(self):
                pass

        sources = DatabaseSchema.build(r1={'a': 'int'}, r3={'a': 'int'})
        strategy = UpdateStrategy.parse('v', sources, """
            +r1(X) :- v(X), not r1(X).
            -r1(X) :- r1(X), not v(X).
        """, expected_get='v(X) :- r1(X).')
        # The certified definition additionally reads r3, misaligned.
        report = CertifiedReport(parse_program(
            'v(X) :- r1(X), r3(Y), X = Y.'))
        sharded = ShardedEngine(sources, shards=2,
                                shard_keys={'v': 'a', 'r1': 'a',
                                            'r3': 'a'})
        single = Engine(sources)
        for engine in (sharded, single):
            engine.load('r1', [(1,), (2,)])
            engine.load('r3', [(1,), (2,), (3,)])
            engine.define_view(strategy, report=report)
        assert sharded.placement('v') == 0
        assert sharded.placement('r3') == 0      # demoted with the view
        for engine in (sharded, single):
            engine.insert('v', (3,))
        assert sharded.database() == single.database()
        assert sharded.rows('v') == frozenset(single.rows('v'))

    def test_unresolved_shard_keys_surface_typos(self, union_strategy):
        sharded = ShardedEngine(union_strategy.sources, shards=2,
                                shard_keys={'v': 'a', 'r1': 'a',
                                            'r2': 'a', 'itemz': 'iid'})
        for relation, rows in (('r1', [(1,)]), ('r2', [(2,)])):
            sharded.load(relation, rows)
        assert sharded.unresolved_shard_keys == ('itemz', 'v')
        sharded.define_view(union_strategy, validate_first=False)
        # 'v' resolved by its define_view; the typo remains visible.
        assert sharded.unresolved_shard_keys == ('itemz',)

    def test_drift_replan_uses_cluster_wide_stats(self, union_strategy):
        """Many small shards must not each see 'my local table is 10x
        below the seeded cluster total' and spuriously re-plan."""
        sharded = ShardedEngine(union_strategy.sources, shards=12,
                                shard_keys=UNION_KEYS)
        sharded.load('r1', [(i,) for i in range(240)])
        sharded.load('r2', [])
        sharded.define_view(union_strategy, validate_first=False)
        sharded.rows('v')
        sharded.insert('v', (1000,))
        for engine in sharded.engines:
            entry = engine.view('v')
            assert entry.replans == 0
            assert entry.stats_seed['r1'] == 240

    def test_aggregated_stats_feed_define_view(self, union_strategy):
        sharded = ShardedEngine(union_strategy.sources, shards=2,
                                shard_keys=UNION_KEYS)
        sharded.load('r1', [(i,) for i in range(10)])
        sharded.load('r2', [(i,) for i in range(100, 140)])
        entry = sharded.define_view(union_strategy, validate_first=False)
        # Every shard's plans were seeded with the cluster-wide counts,
        # not the local (roughly halved) ones.
        assert entry.stats_seed['r1'] == 10
        assert entry.stats_seed['r2'] == 40
        for engine in sharded.engines:
            assert engine.view('v').stats_seed['r1'] == 10


class TestRouting:

    def test_insert_routes_to_owning_shard(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            engine.insert('v', (9,))
        assert (9,) in sharded.shard_rows('r1')[9 % 3]
        assert single.database() == sharded.database()

    def test_keyed_delete_routes(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            engine.delete('v', where={'a': 2})
        assert single.database() == sharded.database()
        assert sharded.rows('v') == {(1,), (4,), (5,)}

    def test_keyed_delete_with_equal_but_differently_typed_key(
            self, union_strategy):
        """WHERE matches rows with == (1 == 1.0 == True): routing must
        land on the shard that holds them."""
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            engine.delete('v', where={'a': True})      # matches (1,)
            engine.delete('v', where={'a': 4.0})       # matches (4,)
        assert single.database() == sharded.database()
        assert sharded.rows('v') == {(2,), (5,)}

    def test_unkeyed_delete_broadcasts(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            engine.delete('v', where=lambda row: row['a'] > 3)
        assert single.database() == sharded.database()
        assert sharded.rows('v') == {(1,), (2,)}

    def test_delete_everything(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            engine.delete('v')
        assert single.database() == sharded.database()
        assert sharded.rows('v') == frozenset()

    def test_update_moving_rows_across_shards(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        # 1 lives on shard 1 (mod 3); 8 lives on shard 2.
        for engine in (single, sharded):
            engine.update('v', {'a': 8}, where={'a': 1})
        assert single.database() == sharded.database()
        assert (8,) in sharded.shard_rows('r1')[8 % 3]
        assert all((1,) not in rows for rows in sharded.shard_rows('r1'))

    def test_update_not_touching_key_broadcasts(self):
        sources = DatabaseSchema.build(t={'k': 'int', 'p': 'int'})
        strategy = UpdateStrategy.parse('tv', sources, """
            +t(K, P) :- tv(K, P), not t(K, P).
            -t(K, P) :- t(K, P), not tv(K, P).
        """, expected_get='tv(K, P) :- t(K, P).')
        single = Engine(sources)
        sharded = ShardedEngine(sources, shards=2,
                                shard_keys={'tv': 'k', 't': 'k'})
        for engine in (single, sharded):
            engine.load('t', [(1, 10), (2, 20), (4, 40)])
            engine.define_view(strategy, validate_first=False)
            engine.update('tv', {'p': lambda row: row['p'] + 1},
                          where=lambda row: row['p'] >= 20)
        assert single.database() == sharded.database()
        assert sharded.rows('tv') == {(1, 10), (2, 21), (4, 41)}

    def test_statement_order_preserved_within_bucket(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        from repro.rdbms.dml import Delete, Insert, Update
        bucket = [Insert((9,)), Update({'a': 12}, {'a': 9}),
                  Delete({'a': 12}), Insert((12,))]
        for engine in (single, sharded):
            engine.execute('v', bucket)
        assert single.database() == sharded.database()
        assert (12,) in sharded.rows('v')

    def test_transaction_spanning_views_and_bases(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            with engine.transaction() as txn:
                txn.insert('v', (7,))
                txn.insert('r2', (10,))
                txn.delete('v', where={'a': 4})
        assert single.database() == sharded.database()
        assert frozenset(single.rows('v')) == sharded.rows('v')

    def test_direct_base_dml_splits(self, union_strategy):
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            engine.insert('r1', (6,))
            engine.delete('r2', where={'a': 5})
        assert single.database() == sharded.database()
        assert (6,) in sharded.shard_rows('r1')[0]

    def test_arity_error_is_schema_error(self, union_strategy):
        _single, sharded = _union_pair(union_strategy)
        with pytest.raises(SchemaError):
            sharded.insert('v', (1, 2, 3))

    def test_unknown_target_rejected(self, union_strategy):
        _single, sharded = _union_pair(union_strategy)
        with pytest.raises(SchemaError):
            sharded.insert('nope', (1,))


class TestMixedBackends:

    def test_mixed_shards_agree_with_single(self, luxury_strategy):
        sharded = _luxury_sharded(luxury_strategy)
        single = Engine(luxury_strategy.sources)
        single.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                              (3, 'cap', 10)])
        single.define_view(luxury_strategy, validate_first=False)
        for engine in (single, sharded):
            engine.rows('luxuryitems')
            with engine.transaction() as txn:
                for i in range(10, 22):
                    txn.insert('luxuryitems', (i, f'item{i}', 2000 + i))
                txn.delete('luxuryitems', where={'iid': 11})
        assert single.database() == sharded.database()
        assert frozenset(single.rows('luxuryitems')) \
            == sharded.rows('luxuryitems')
        # Every shard holds only its own key range.
        for index, rows in enumerate(sharded.shard_rows('items')):
            assert all(iid % 3 == index for iid, _n, _p in rows)

    def test_file_backed_cold_shard(self, luxury_strategy, tmp_path):
        cold = SQLiteBackend(luxury_strategy.sources,
                             path=str(tmp_path / 'cold.db'))
        sharded = ShardedEngine(luxury_strategy.sources,
                                backends=['memory', cold],
                                shard_keys={'luxuryitems': 'iid',
                                            'items': 'iid'})
        sharded.load('items', [(2, 'ring', 4000), (3, 'cap', 2000)])
        sharded.define_view(luxury_strategy, validate_first=False)
        sharded.insert('luxuryitems', (5, 'tiara', 9000))
        assert (5, 'tiara', 9000) in sharded.shard_rows('items')[1]
        sharded.close()


class TestAtomicity:

    def test_constraint_violation_rolls_back_all_shards(
            self, luxury_strategy):
        sharded = _luxury_sharded(luxury_strategy)
        sharded.rows('luxuryitems')
        before = sharded.database()
        before_shards = sharded.shard_rows('items')
        with pytest.raises(ConstraintViolation):
            with sharded.transaction() as txn:
                txn.insert('luxuryitems', (10, 'a', 2000))   # shard 1
                txn.insert('luxuryitems', (11, 'b', 3000))   # shard 2
                txn.insert('luxuryitems', (12, 'gum', 5))    # violates
        assert sharded.database() == before
        assert sharded.shard_rows('items') == before_shards
        assert sharded.rows('luxuryitems') == {(1, 'watch', 5000),
                                               (2, 'ring', 4000)}

    def test_empty_bucket_does_not_split_batched_translation(
            self, luxury_strategy):
        """An empty bucket is a no-op before the flush gate on both
        deployments: a transiently-violating insert repaired later in
        the same transaction still coalesces to nothing."""
        from repro.rdbms.dml import Delete, Insert
        sharded = _luxury_sharded(luxury_strategy)
        single = Engine(luxury_strategy.sources)
        single.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                              (3, 'cap', 10)])
        single.define_view(luxury_strategy, validate_first=False)
        batches = [('luxuryitems', [Insert((7, 'cheap', 5))]),
                   ('items', []),
                   ('luxuryitems', [Delete({'iid': 7})])]
        for engine in (single, sharded):
            engine.execute_many(batches)       # net-empty: no raise
        assert sharded.database() == single.database()

    def test_unknown_where_column_raises_like_single_engine(
            self, union_strategy):
        """A keyed WHERE naming an unknown column must not be pinned
        away from the rows whose scan raises the SchemaError."""
        single, sharded = _union_pair(union_strategy)
        for engine in (single, sharded):
            with pytest.raises(SchemaError, match='unknown column'):
                engine.delete('r1', where={'bogus': 9, 'a': 2})
        assert single.database() == sharded.database()

    def test_two_faults_on_different_shards_raise_like_single_engine(
            self, luxury_strategy):
        """A constraint fault on one shard plus a schema fault on
        another must surface in single-engine statement order: the
        pending view flush is forced before the later bucket derives,
        so ConstraintViolation wins on both deployments."""
        from repro.rdbms.dml import Insert
        sharded = _luxury_sharded(luxury_strategy)
        single = Engine(luxury_strategy.sources)
        single.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                              (3, 'cap', 10)])
        single.define_view(luxury_strategy, validate_first=False)
        batches = [('luxuryitems', [Insert((5, 'cheap', 10))]),
                   ('items', [Insert((500, 'x', 'NOT_AN_INT'))])]
        for engine in (single, sharded):
            with pytest.raises(ConstraintViolation):
                engine.execute_many(batches)
        assert sharded.database() == single.database()

    def test_multi_view_abort_surfaces_first_staged_violation(self):
        """Two views violating in one transaction: shards prepare in
        first-touched order, so the SAME view's violation surfaces as
        on a single engine (same witness, not just same type)."""
        sources = DatabaseSchema.build(
            items={'iid': 'int', 'price': 'int'},
            goods={'gid': 'int', 'price': 'int'})
        lux = UpdateStrategy.parse('lux', sources, """
            ⊥ :- lux(I, P), not P > 1000.
            +items(I, P) :- lux(I, P), not items(I, P).
            -items(I, P) :- items(I, P), P > 1000, not lux(I, P).
        """, expected_get='lux(I, P) :- items(I, P), P > 1000.')
        cheap = UpdateStrategy.parse('cheap', sources, """
            ⊥ :- cheap(I, P), not P < 100.
            +goods(I, P) :- cheap(I, P), not goods(I, P).
            -goods(I, P) :- goods(I, P), P < 100, not cheap(I, P).
        """, expected_get='cheap(I, P) :- goods(I, P), P < 100.')
        witnesses = []
        for build in ('single', 'sharded'):
            if build == 'single':
                engine = Engine(sources)
            else:
                engine = ShardedEngine(sources, shards=2,
                                       shard_keys={'lux': 'iid',
                                                   'items': 'iid',
                                                   'cheap': 'gid',
                                                   'goods': 'gid'})
            engine.load('items', [])
            engine.load('goods', [])
            engine.define_view(lux, validate_first=False)
            engine.define_view(cheap, validate_first=False)
            from repro.rdbms.dml import Insert
            with pytest.raises(ConstraintViolation) as err:
                # lux's violation routes to shard 1, cheap's to shard
                # 0: index order would surface cheap's first.
                engine.execute_many([('lux', [Insert((1, 50))]),
                                     ('cheap', [Insert((2, 500))])])
            witnesses.append(err.value.witness)
        assert witnesses[0] == witnesses[1]

    def test_schema_error_rolls_back_all_shards(self, union_strategy):
        _single, sharded = _union_pair(union_strategy)
        before = sharded.database()
        with pytest.raises(SchemaError):
            with sharded.transaction() as txn:
                txn.insert('v', (9,))
                txn.insert('r1', ('not-an-int',))
        assert sharded.database() == before


class TestScatterGather:

    def test_view_cache_materialises_per_shard(self, union_strategy):
        _single, sharded = _union_pair(union_strategy)
        assert sharded.rows('v') == {(1,), (2,), (4,), (5,)}
        for index, engine in enumerate(sharded.engines):
            assert engine.backend.has_cache('v')
            assert frozenset(engine.rows('v')) \
                == sharded.shard_rows('v')[index]

    def test_database_merges_shards(self, union_strategy):
        _single, sharded = _union_pair(union_strategy)
        snapshot = sharded.database()
        assert snapshot['r1'] == {(1,), (4,)}
        assert snapshot['r2'] == {(2,), (5,)}

    def test_classifier_matches_delta_split(self, union_strategy):
        from repro.relational.delta import Delta
        _single, sharded = _union_pair(union_strategy)
        delta = Delta({(0,), (1,), (5,)}, {(4,)})
        parts = delta.split(sharded.classifier('r1'))
        assert parts[0].insertions == {(0,)}
        assert parts[1].insertions == {(1,)}
        assert parts[2].insertions == {(5,)}
        assert parts[1].deletions == {(4,)}
        assert Delta.merge(parts.values()) == delta
