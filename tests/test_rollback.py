"""Rollback/abort coverage: a failing transaction must leave base
tables, materialised view caches, AND planner bookkeeping exactly as
they were — on both storage backends, in both translation modes, and
across every shard a sharded transaction touched."""

import pytest

from repro.errors import ConstraintViolation, SchemaError
from repro.rdbms.engine import Engine
from repro.rdbms.sharded import ShardedEngine

BACKENDS = ('memory', 'sqlite')
MODES = (True, False)          # batch_deltas


def _luxury_engine(luxury_strategy, backend, batch):
    engine = Engine(luxury_strategy.sources, backend=backend,
                    batch_deltas=batch)
    engine.load('items', [(1, 'watch', 5000), (2, 'ring', 4000),
                          (3, 'cap', 10)])
    engine.define_view(luxury_strategy, validate_first=False)
    engine.rows('luxuryitems')        # materialise the cache
    return engine


def _planner_state(engine, view):
    entry = engine.view(view)
    return (dict(entry.stats_seed), entry.replans,
            entry.get_plan, entry.incremental_plan)


class TestSingleEngineRollback:

    @pytest.mark.parametrize('backend', BACKENDS)
    @pytest.mark.parametrize('batch', MODES)
    def test_constraint_mid_transaction(self, luxury_strategy, backend,
                                        batch):
        engine = _luxury_engine(luxury_strategy, backend, batch)
        before_db = engine.database()
        before_view = frozenset(engine.rows('luxuryitems'))
        before_planner = _planner_state(engine, 'luxuryitems')
        with pytest.raises(ConstraintViolation):
            with engine.transaction() as txn:
                txn.insert('luxuryitems', (10, 'tiara', 9000))
                txn.insert('luxuryitems', (11, 'gum', 5))     # violates
                txn.insert('luxuryitems', (12, 'crown', 8000))
        assert engine.database() == before_db
        assert engine.backend.has_cache('luxuryitems')
        assert frozenset(engine.rows('luxuryitems')) == before_view
        assert _planner_state(engine, 'luxuryitems') == before_planner

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_schema_error_after_view_writes(self, luxury_strategy,
                                            backend):
        """A late schema error aborts the already-translated view
        writes of the same transaction."""
        engine = _luxury_engine(luxury_strategy, backend, True)
        before_db = engine.database()
        with pytest.raises(SchemaError):
            with engine.transaction() as txn:
                txn.insert('luxuryitems', (10, 'tiara', 9000))
                txn.insert('items', ('bad-id', 'x', 1))
        assert engine.database() == before_db
        assert frozenset(engine.rows('luxuryitems')) \
            == {(1, 'watch', 5000), (2, 'ring', 4000)}

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_failed_transaction_then_success(self, luxury_strategy,
                                             backend):
        """The engine is fully usable after an abort — no leaked
        staging state."""
        engine = _luxury_engine(luxury_strategy, backend, True)
        with pytest.raises(ConstraintViolation):
            engine.insert('luxuryitems', (11, 'gum', 5))
        engine.insert('luxuryitems', (12, 'crown', 8000))
        assert (12, 'crown', 8000) in engine.rows('items')


class TestShardedRollback:

    def _sharded(self, luxury_strategy, batch=True):
        sharded = ShardedEngine(luxury_strategy.sources,
                                backends=['memory', 'sqlite', 'memory'],
                                shard_keys={'luxuryitems': 'iid',
                                            'items': 'iid'},
                                batch_deltas=batch)
        sharded.load('items', [(1, 'watch', 5000), (2, 'ring', 4000)])
        sharded.define_view(luxury_strategy, validate_first=False)
        sharded.rows('luxuryitems')
        return sharded

    @pytest.mark.parametrize('batch', MODES)
    def test_abort_rolls_back_every_touched_shard(self, luxury_strategy,
                                                  batch):
        sharded = self._sharded(luxury_strategy, batch)
        before_db = sharded.database()
        before_shards = sharded.shard_rows('items')
        before_caches = sharded.shard_rows('luxuryitems')
        before_planner = [_planner_state(engine, 'luxuryitems')
                         for engine in sharded.engines]
        with pytest.raises(ConstraintViolation):
            with sharded.transaction() as txn:
                txn.insert('luxuryitems', (10, 'a', 2000))   # shard 1
                txn.insert('luxuryitems', (11, 'b', 3000))   # shard 2
                txn.insert('luxuryitems', (12, 'c', 4000))   # shard 0
                txn.insert('luxuryitems', (13, 'gum', 5))    # violates
        assert sharded.database() == before_db
        assert sharded.shard_rows('items') == before_shards
        assert sharded.shard_rows('luxuryitems') == before_caches
        assert [_planner_state(engine, 'luxuryitems')
                for engine in sharded.engines] == before_planner
        for engine in sharded.engines:
            assert engine.backend.has_cache('luxuryitems')

    def test_abort_with_direct_base_writes(self, luxury_strategy):
        sharded = self._sharded(luxury_strategy)
        before_db = sharded.database()
        with pytest.raises(ConstraintViolation):
            with sharded.transaction() as txn:
                txn.insert('items', (20, 'direct', 1))       # shard 2
                txn.insert('luxuryitems', (21, 'gum', 5))    # violates
        assert sharded.database() == before_db

    def test_sharded_engine_usable_after_abort(self, luxury_strategy):
        sharded = self._sharded(luxury_strategy)
        with pytest.raises(ConstraintViolation):
            sharded.insert('luxuryitems', (11, 'gum', 5))
        sharded.insert('luxuryitems', (12, 'crown', 8000))
        assert (12, 'crown', 8000) in sharded.rows('items')
        assert (12, 'crown', 8000) in sharded.shard_rows('items')[0]
