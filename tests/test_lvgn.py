"""LVGN-Datalog fragment tests (§3.2): guardedness, linear view,
classification — using the paper's own examples."""

from repro.core.lvgn import (check_guarded_rule, check_linear_view,
                             classify, is_lvgn)
from repro.datalog.parser import parse_program, parse_rule


class TestGuardedNegation:

    def test_example_3_2(self):
        # h(X,Y,Z) :- r1(X,Y,Z), ¬Z = 1, ¬r2(X,Y,Z) — negation guarded.
        rule = parse_rule(
            'h(X, Y, Z) :- r1(X, Y, Z), not Z = 1, not r2(X, Y, Z).')
        assert check_guarded_rule(rule) is None

    def test_unguarded_negated_atom(self):
        rule = parse_rule('h(X) :- r(X), not s(X, Y), t(Y).')
        reason = check_guarded_rule(rule)
        assert reason is not None and 'not guarded' in reason

    def test_unguarded_head(self):
        # Inner join (footnote 6): head vars spread over two atoms.
        rule = parse_rule('v(X, Y, Z) :- s1(X, Y), s2(Y, Z).')
        reason = check_guarded_rule(rule)
        assert reason is not None and 'head' in reason

    def test_head_guard_helped_by_constant_equality(self):
        rule = parse_rule("h(X, D) :- r(X), D = 'unknown'.")
        assert check_guarded_rule(rule) is None

    def test_unguarded_equality_footnote_7(self):
        # PK constraint: ⊥ :- r(A,B1), r(A,B2), ¬B1 = B2 — not guarded.
        rule = parse_rule('⊥ :- r(A, B1), r(A, B2), not B1 = B2.')
        reason = check_guarded_rule(rule)
        assert reason is not None and 'equality' in reason

    def test_comparison_form_enforced(self):
        rule = parse_rule('h(X, Y) :- r(X, Y), X < Y.')
        assert 'X < c' in check_guarded_rule(rule)

    def test_nonstrict_comparison_outside_fragment(self):
        rule = parse_rule('h(X) :- r(X), X <= 3.')
        assert '<=' in check_guarded_rule(rule)

    def test_strict_comparison_with_constant_ok(self):
        rule = parse_rule('h(X) :- r(X), X > 3.')
        assert check_guarded_rule(rule) is None

    def test_negated_comparison_guarded_by_atom(self):
        rule = parse_rule('h(X) :- r(X), not X > 3.')
        assert check_guarded_rule(rule) is None

    def test_anonymous_vars_in_negated_atom_exempt(self):
        rule = parse_rule('h(E) :- r(E), not ced(E, _).')
        assert check_guarded_rule(rule) is None


class TestLinearView(object):

    def test_example_3_3_rule1_ok(self):
        program = parse_program(
            '-r(X, Y, Z) :- r(X, Y, Z), not v(X, Y).')
        assert check_linear_view(program, 'v') is None

    def test_example_3_3_rule2_projection(self):
        program = parse_program(
            '-r(X, Y, Z) :- r(X, Y, Z), not v(X, _).')
        reason = check_linear_view(program, 'v')
        assert reason is not None and 'anonymous' in reason.lower()

    def test_example_3_3_rule3_self_join(self):
        program = parse_program(
            '+r(X, Y, Z) :- v(X, Y), v(Y, Z), not r(X, Y, Z).')
        reason = check_linear_view(program, 'v')
        assert reason is not None and 'self-join' in reason

    def test_view_in_intermediate_rule_rejected(self):
        program = parse_program("""
            aux(X) :- v(X).
            -r(X) :- r(X), not aux(X).
        """)
        reason = check_linear_view(program, 'v')
        assert reason is not None and 'delta rules' in reason

    def test_view_in_constraint_allowed(self):
        program = parse_program("""
            ⊥ :- v(X), X > 2.
            -r(X) :- r(X), not v(X).
        """)
        assert check_linear_view(program, 'v') is None


class TestClassify:

    def test_union_strategy_is_lvgn(self, union_strategy):
        report = classify(union_strategy.putdelta, 'v')
        assert report.lvgn and report.nr_datalog
        assert str(report) == 'LVGN-Datalog'

    def test_join_strategy_is_not_lvgn(self):
        program = parse_program("""
            vt(I, T, A, R) :- tracks1(I, T, A, R, _).
            +tracks(I, T, A, R) :- tracks1(I, T, A, R, Q),
                not tracks(I, T, A, R).
        """)
        report = classify(program, 'tracks1')
        assert report.nr_datalog and not report.lvgn

    def test_recursive_program_not_nr(self):
        program = parse_program('p(X) :- p(X).')
        report = classify(program, 'v')
        assert not report.nr_datalog and not report.lvgn

    def test_is_lvgn_helper(self, luxury_strategy):
        assert is_lvgn(luxury_strategy.putdelta, 'luxuryitems')
