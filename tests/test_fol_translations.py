"""Datalog ↔ FO translation tests: the Lemma 3.1 and Appendix B pipelines.

The central property: translating a Datalog query to FO and back yields an
equivalent query on random databases.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.errors import TransformationError
from repro.fol.datalog_to_fol import predicate_to_fol
from repro.fol.fol_to_datalog import fol_to_datalog
from repro.fol.formula import (FoAtom, FoConst, FoEq, FoVar, Forall, Not,
                               free_variables, make_and, make_exists,
                               make_or)
from repro.fol.normalize import (NOT_SAFE, is_safe_range, range_restricted,
                                 to_ranf, to_srnf)
from repro.relational.database import Database


def round_trip_equivalent(program_text, goal, databases):
    """Evaluate a query directly and through the FO round-trip."""
    program = parse_program(program_text)
    variables, formula = predicate_to_fol(program, goal)
    assert is_safe_range(formula), formula
    back, back_goal = fol_to_datalog(formula, f'{goal}__rt',
                                     tuple(v.name for v in variables))
    for db in databases:
        direct = evaluate(program, db)[goal]
        indirect = evaluate(back, db)[back_goal]
        assert direct == indirect, (db, formula)


def small_dbs(*names, arity=1, values=(0, 1, 2)):
    rng = random.Random(0)
    dbs = []
    for _ in range(12):
        data = {}
        for name in names:
            rows = set()
            for _ in range(rng.randint(0, 4)):
                rows.add(tuple(rng.choice(values) for _ in range(arity)))
            data[name] = rows
        dbs.append(Database.from_dict(data))
    return dbs


class TestDatalogToFolRoundTrip:

    def test_union(self):
        round_trip_equivalent('v(X) :- r1(X).\nv(X) :- r2(X).', 'v',
                              small_dbs('r1', 'r2'))

    def test_difference(self):
        round_trip_equivalent('v(X) :- r1(X), not r2(X).', 'v',
                              small_dbs('r1', 'r2'))

    def test_join(self):
        round_trip_equivalent('v(X, Y) :- r(X, Y), s(Y, X).', 'v',
                              small_dbs('r', 's', arity=2))

    def test_projection(self):
        round_trip_equivalent('v(X) :- r(X, _).', 'v',
                              small_dbs('r', arity=2))

    def test_selection_with_comparison(self):
        round_trip_equivalent('v(X) :- r(X), X > 1.', 'v',
                              small_dbs('r'))

    def test_constants_in_head(self):
        round_trip_equivalent("v(X, 'tag') :- r(X).", 'v', small_dbs('r'))

    def test_layered_idb(self):
        round_trip_equivalent("""
            mid(X) :- r1(X), not r2(X).
            v(X) :- mid(X), r3(X).
        """, 'v', small_dbs('r1', 'r2', 'r3'))

    def test_negated_idb(self):
        round_trip_equivalent("""
            mid(X) :- r1(X), r2(X).
            v(X) :- r1(X), not mid(X).
        """, 'v', small_dbs('r1', 'r2'))

    def test_anonymous_in_negated_atom(self):
        round_trip_equivalent('v(X) :- r(X), not s(X, _).', 'v',
                              [Database.from_dict(
                                  {'r': {(1,), (2,)}, 's': {(2, 0)}})])

    def test_repeated_head_variable(self):
        round_trip_equivalent('v(X, X) :- r(X).', 'v', small_dbs('r'))

    def test_goal_must_exist(self):
        with pytest.raises(TransformationError):
            predicate_to_fol(parse_program('v(X) :- r(X).'), 'nope')


class TestSafeRangeAnalysis:

    def x(self):
        return FoVar('X')

    def test_atom_is_safe(self):
        assert is_safe_range(FoAtom('r', (FoVar('X'),)))

    def test_negation_alone_unsafe(self):
        assert not is_safe_range(Not(FoAtom('r', (FoVar('X'),))))

    def test_guarded_negation_safe(self):
        formula = make_and([FoAtom('r', (FoVar('X'),)),
                            Not(FoAtom('s', (FoVar('X'),)))])
        assert is_safe_range(formula)

    def test_disjunction_needs_both_sides(self):
        mixed = make_or([FoAtom('r', (FoVar('X'),)),
                         Not(FoAtom('s', (FoVar('X'),)))])
        assert not is_safe_range(mixed)

    def test_equality_to_constant_restricts(self):
        assert is_safe_range(FoEq(FoVar('X'), FoConst(1)))

    def test_var_var_equality_propagates_in_conjunction(self):
        formula = make_and([FoAtom('r', (FoVar('X'),)),
                            FoEq(FoVar('X'), FoVar('Y'))])
        assert range_restricted(formula) == {'X', 'Y'}

    def test_unrestricted_quantified_var(self):
        formula = make_exists((FoVar('Y'),),
                              make_and([FoAtom('r', (FoVar('X'),)),
                                        Not(FoAtom('s', (FoVar('Y'),)))]))
        assert range_restricted(to_srnf(formula)) is NOT_SAFE

    def test_forall_eliminated_by_srnf(self):
        formula = Forall((FoVar('X'),), FoAtom('r', (FoVar('X'),)))
        srnf = to_srnf(formula)
        assert isinstance(srnf, Not)

    def test_comparison_restricts_nothing(self):
        from repro.fol.formula import FoCmp
        assert range_restricted(FoCmp('<', FoVar('X'), FoConst(1))) == set()


class TestRanf:

    def test_push_into_or(self):
        # r(X) ∧ (s(X) ∨ ¬t(X)) — the disjunction is not self-contained.
        formula = make_and([
            FoAtom('r', (FoVar('X'),)),
            make_or([FoAtom('s', (FoVar('X'),)),
                     Not(FoAtom('t', (FoVar('X'),)))])])
        ranf = to_ranf(formula)
        program, goal = fol_to_datalog(ranf, 'q', ('X',))
        for db in small_dbs('r', 's', 't'):
            expected = {row for row in db['r']
                        if row in db['s'] or row not in db['t']}
            assert evaluate(program, db)[goal] == expected

    def test_push_into_negated_quantifier(self):
        # r(X) ∧ ¬∃Y (s(X, Y) ∧ ¬t(Y))
        formula = make_and([
            FoAtom('r', (FoVar('X'),)),
            Not(make_exists((FoVar('Y'),),
                            make_and([FoAtom('s', (FoVar('X'), FoVar('Y'))),
                                      Not(FoAtom('t', (FoVar('Y'),)))])))])
        program, goal = fol_to_datalog(formula, 'q', ('X',))
        rng = random.Random(1)
        for _ in range(10):
            db = Database.from_dict({
                'r': {(rng.randint(0, 2),) for _ in range(3)},
                's': {(rng.randint(0, 2), rng.randint(0, 2))
                      for _ in range(3)},
                't': {(rng.randint(0, 2),) for _ in range(2)}})
            expected = {row for row in db['r']
                        if not any(s[0] == row[0] and (s[1],) not in db['t']
                                   for s in db['s'])}
            assert evaluate(program, db)[goal] == expected

    def test_unsafe_formula_rejected(self):
        with pytest.raises(TransformationError):
            fol_to_datalog(Not(FoAtom('r', (FoVar('X'),))), 'q', ('X',))
