"""Concurrency suite for the thread-pooled sharded engine.

What ``ShardedEngine(parallelism=N)`` must guarantee, and what these
tests pin:

* committed state and raise behavior are bit-identical to the serial
  (``parallelism=1``) pipeline — including WHICH constraint violation
  surfaces when several shards fail in the same transaction (the
  coordinator joins prepares in first-touched order);
* an abort while sibling shards are still mid-prepare waits for every
  in-flight worker and leaves every shard untouched;
* readers are never blocked by an in-flight transaction's prepare
  phase and observe pre-transaction state (only the apply phase takes
  the per-shard locks);
* the fan-out is real: two shards' prepares genuinely overlap in time
  (a barrier that only opens when both are in-flight);
* SQLite shards work from pool worker threads — connections are
  leased per thread (the thread-affinity regression) and released
  deterministically.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConstraintViolation, SchemaError
from repro.rdbms.backends.memory import MemoryBackend
from repro.rdbms.dml import Delete, Insert
from repro.rdbms.engine import Engine
from repro.rdbms.sharded import RangePartitioner, ShardedEngine

WAIT = 10.0         # generous upper bound; normal runs take milliseconds

BASE_ROWS = [(1, 'watch', 5000), (2, 'ring', 4000),
             (101, 'vase', 3000), (102, 'clock', 2500)]


class GateBackend(MemoryBackend):
    """A memory backend whose ∂put evaluation can be held at a gate.

    ``armed`` is off during setup (load / view materialisation); once
    armed, entering the incremental evaluation announces itself via
    ``entered`` and blocks until ``release`` — the window the tests
    use to observe a transaction mid-prepare."""

    def __init__(self, schema):
        super().__init__(schema)
        self.armed = False
        self.entered = threading.Event()
        self.release = threading.Event()

    def evaluate_incremental_batch(self, entry, sources, view_handle,
                                   delta, *, new_view_rows=None):
        if self.armed:
            self.entered.set()
            assert self.release.wait(WAIT), 'gate never released'
        return super().evaluate_incremental_batch(
            entry, sources, view_handle, delta,
            new_view_rows=new_view_rows)


class BarrierBackend(MemoryBackend):
    """Blocks ∂put evaluation on a shared barrier: the barrier opens
    only when every participating shard is in-flight simultaneously —
    true overlap, not interleaving."""

    def __init__(self, schema, barrier: threading.Barrier):
        super().__init__(schema)
        self.armed = False
        self.barrier = barrier

    def evaluate_incremental_batch(self, entry, sources, view_handle,
                                   delta, *, new_view_rows=None):
        if self.armed:
            self.barrier.wait(timeout=WAIT)
        return super().evaluate_incremental_batch(
            entry, sources, view_handle, delta,
            new_view_rows=new_view_rows)


def build_engine(luxury_strategy, *, parallelism, backends=None,
                 shards=2):
    """Two range shards of ``luxuryitems``: iid < 100 on shard 0."""
    boundaries = [100 * (i + 1) for i in range(shards - 1)]
    engine = ShardedEngine(
        luxury_strategy.sources,
        partitioner=RangePartitioner(boundaries),
        backends=backends,
        shard_keys={'luxuryitems': 'iid', 'items': 'iid'},
        parallelism=parallelism)
    engine.load('items', BASE_ROWS)
    engine.define_view(luxury_strategy, validate_first=False)
    engine.rows('luxuryitems')
    return engine


class TestParallelEquivalence:

    def test_parallel_matches_serial(self, luxury_strategy):
        serial = build_engine(luxury_strategy, parallelism=1)
        parallel = build_engine(luxury_strategy, parallelism=2)
        txns = [
            [('luxuryitems', [Insert((7, 'tiara', 9000))]),
             ('luxuryitems', [Insert((107, 'bust', 8000))])],
            [('luxuryitems', [Delete({'iid': 7})]),
             ('items', [Insert((150, 'statue', 1500))])],
            [('luxuryitems', [Insert((8, 'orb', 7000)),
                              Delete({'iid': 107})])],
        ]
        for txn in txns:
            serial.execute_many(txn)
            parallel.execute_many(txn)
            assert parallel.database() == serial.database()
            assert parallel.rows('luxuryitems') \
                == serial.rows('luxuryitems')
        serial.close()
        parallel.close()

    def test_parallelism_capped_at_shards(self, luxury_strategy):
        engine = build_engine(luxury_strategy, parallelism=64)
        assert engine.parallelism == 2
        engine.close()

    def test_parallelism_must_be_positive(self, luxury_strategy):
        with pytest.raises(SchemaError):
            build_engine(luxury_strategy, parallelism=0)


class TestDeterministicFirstViolation:

    def _witness(self, luxury_strategy, parallelism, txn):
        engine = build_engine(luxury_strategy, parallelism=parallelism)
        before = engine.database()
        with pytest.raises(ConstraintViolation) as err:
            engine.execute_many(txn)
        assert engine.database() == before
        engine.close()
        return str(err.value)

    def test_first_touched_shard_wins_in_one_bucket(
            self, luxury_strategy):
        """Both shards violate inside one (coalesced) bucket: the
        fan-out forwards shards in sorted order, so shard 0 is
        first-touched and its witness must surface — serial and
        parallel alike, even though parallel workers may finish in
        either order."""
        txn = [('luxuryitems', [Insert((150, 'cheap_hi', 10))]),
               ('luxuryitems', [Insert((50, 'cheap_lo', 20))])]
        witnesses = {self._witness(luxury_strategy, p, txn)
                     for p in (1, 2, 2)}
        assert len(witnesses) == 1
        assert 'cheap_lo' in witnesses.pop()   # shard 0 sorts first

    def test_first_touched_shard_wins_across_buckets(
            self, luxury_strategy):
        """Separated buckets (no coalescing): shard 1's working is
        created first, so its violation wins over shard 0's — the
        serial first-staged drain order, preserved by the parallel
        prepare join."""
        txn = [('luxuryitems', [Insert((150, 'cheap_hi', 10))]),
               ('items', [Insert((160, 'plain', 50))]),
               ('luxuryitems', [Insert((50, 'cheap_lo', 20))])]
        witnesses = {self._witness(luxury_strategy, p, txn)
                     for p in (1, 2, 2)}
        assert len(witnesses) == 1
        assert 'cheap_hi' in witnesses.pop()   # shard 1 touched first


class TestMidFlightAbort:

    def test_abort_waits_for_inflight_prepare_and_rolls_back(
            self, luxury_strategy):
        """Shard 0's prepare is held at the gate while shard 1's
        prepare fails: the coordinator must wait for shard 0, raise
        shard 1's violation, and leave both shards untouched."""
        gated = GateBackend(luxury_strategy.sources)
        engine = build_engine(luxury_strategy, parallelism=2,
                              backends=[gated, 'memory'])
        before = engine.database()
        before_view = engine.rows('luxuryitems')
        gated.armed = True
        failed = {}

        def transaction():
            try:
                engine.execute_many([
                    ('luxuryitems', [Insert((9, 'valid', 6000))]),
                    ('luxuryitems', [Insert((109, 'cheap', 5))]),
                ])
            except ConstraintViolation as err:
                failed['error'] = err

        runner = threading.Thread(target=transaction)
        runner.start()
        # Shard 0 really is mid-prepare when we let the abort happen.
        assert gated.entered.wait(WAIT)
        gated.release.set()
        runner.join(WAIT)
        assert not runner.is_alive()
        gated.armed = False
        assert 'error' in failed
        assert engine.database() == before
        assert engine.rows('luxuryitems') == before_view
        for shard in engine.shard_rows('items'):
            assert not shard & {(9, 'valid', 6000), (109, 'cheap', 5)}
        engine.close()


class TestConcurrentReads:

    def test_get_during_inflight_prepare_sees_pre_state(
            self, luxury_strategy):
        """A reader during another transaction's prepare phase is not
        blocked and sees pre-transaction state; after commit it sees
        the update."""
        gated = GateBackend(luxury_strategy.sources)
        engine = build_engine(luxury_strategy, parallelism=2,
                              backends=[gated, 'memory'])
        before_view = engine.rows('luxuryitems')
        gated.armed = True
        runner = threading.Thread(
            target=engine.execute_many,
            args=([('luxuryitems', [Insert((10, 'crown', 9999))])],))
        runner.start()
        assert gated.entered.wait(WAIT)
        # The transaction is mid-prepare on shard 0 right now.
        assert engine.rows('luxuryitems') == before_view
        assert engine.count('items') == len(BASE_ROWS)
        gated.release.set()
        runner.join(WAIT)
        assert not runner.is_alive()
        gated.armed = False
        assert engine.rows('luxuryitems') \
            == before_view | {(10, 'crown', 9999)}
        engine.close()


class TestTrueOverlap:

    def test_two_shards_prepare_simultaneously(self, luxury_strategy):
        """The barrier opens only if BOTH shards' prepares are
        in-flight at the same moment — serial execution would time
        out.  This is the proof the fan-out actually overlaps."""
        barrier = threading.Barrier(2)
        backends = [BarrierBackend(luxury_strategy.sources, barrier),
                    BarrierBackend(luxury_strategy.sources, barrier)]
        engine = build_engine(luxury_strategy, parallelism=2,
                              backends=backends)
        for backend in backends:
            backend.armed = True
        engine.execute_many([
            ('luxuryitems', [Insert((11, 'sceptre', 5000))]),
            ('luxuryitems', [Insert((111, 'globe', 5000))]),
        ])
        for backend in backends:
            backend.armed = False
        assert not barrier.broken
        assert {(11, 'sceptre', 5000), (111, 'globe', 5000)} \
            <= engine.rows('luxuryitems')
        engine.close()

    def test_stress_concurrent_readers_and_transactions(
            self, luxury_strategy):
        """Transactions against a parallel engine while reader threads
        hammer scatter-gather ``rows``: no exceptions, and the final
        state equals the serial reference."""
        parallel = build_engine(luxury_strategy, parallelism=2)
        serial = build_engine(luxury_strategy, parallelism=1)
        stop = threading.Event()
        errors: list = []

        def reader():
            while not stop.is_set():
                try:
                    rows = parallel.rows('luxuryitems')
                    assert isinstance(rows, frozenset)
                    parallel.count('items')
                except Exception as exc:      # pragma: no cover
                    errors.append(exc)
                    return

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            for n in range(30):
                txn = [('luxuryitems',
                        [Insert((n + 10, f'a{n}', 2000 + n)),
                         Insert((n + 210, f'b{n}', 3000 + n))])]
                parallel.execute_many(txn)
                serial.execute_many(txn)
        finally:
            stop.set()
            for thread in readers:
                thread.join(WAIT)
        assert not errors
        assert parallel.database() == serial.database()
        assert parallel.rows('luxuryitems') == serial.rows('luxuryitems')
        parallel.close()
        serial.close()


class TestSQLiteThreadAffinity:

    def test_sqlite_shard_from_worker_thread(self, luxury_strategy):
        """The regression that motivated per-thread leasing: a SQLite
        shard driven by pool workers used to die with SQLite's
        cross-thread ProgrammingError."""
        engine = build_engine(luxury_strategy, parallelism=2,
                              backends=['sqlite', 'sqlite'])
        engine.execute_many([
            ('luxuryitems', [Insert((12, 'fan', 4000))]),
            ('luxuryitems', [Insert((112, 'lamp', 4500))]),
        ])
        assert {(12, 'fan', 4000), (112, 'lamp', 4500)} \
            <= engine.rows('luxuryitems')
        engine.close()

    def test_engine_usable_from_foreign_thread(self):
        """A plain SQLite-backed Engine crosses threads freely: each
        thread leases its own connection."""
        from repro.relational.schema import DatabaseSchema
        schema = DatabaseSchema.build(t={'a': 'int', 'b': 'string'})
        engine = Engine(schema, backend='sqlite')
        engine.load('t', {(1, 'x')})
        with ThreadPoolExecutor(2) as pool:
            pool.submit(engine.insert, 't', (2, 'y')).result()
            seen = pool.submit(engine.rows, 't').result()
        assert seen == {(1, 'x'), (2, 'y')}
        assert engine.backend.leased_threads() >= 2
        engine.close()

    def test_release_thread_is_deterministic(self):
        from repro.relational.schema import DatabaseSchema
        schema = DatabaseSchema.build(t={'a': 'int'})
        engine = Engine(schema, backend='sqlite')
        engine.load('t', {(1,)})
        backend = engine.backend
        released = threading.Event()

        def use_and_release():
            # A write must touch SQLite (reads may be served from the
            # Python-side row cache without ever leasing a connection).
            engine.insert('t', (2,))
            before = backend.leased_threads()
            assert before >= 2            # root lease + this worker
            backend.release_thread()
            assert backend.leased_threads() == before - 1
            released.set()

        worker = threading.Thread(target=use_and_release)
        worker.start()
        worker.join(WAIT)
        assert released.is_set()
        # The root lease survives; the worker's write is visible.
        assert engine.rows('t') == {(1,), (2,)}
        engine.close()
        # close() is idempotent, and a lease after close refuses.
        engine.close()
        with pytest.raises(SchemaError):
            backend.rows('t')


class TestPlannerLocking:

    def test_concurrent_compiles_share_one_plan(self):
        from repro.datalog.parser import parse_program
        from repro.datalog.plan import compile_program
        program = parse_program('v(X) :- r(X), not s(X).')
        plans = []
        with ThreadPoolExecutor(4) as pool:
            futures = [pool.submit(compile_program, program)
                       for _ in range(16)]
            plans = [f.result() for f in futures]
        assert all(plan is plans[0] for plan in plans)

    def test_concurrent_replans_do_not_interleave(self, luxury_strategy):
        """Hammer _maybe_replan for one entry from several threads
        while stats drift: the replans counter must move coherently
        and the entry must stay internally consistent."""
        engine = Engine(luxury_strategy.sources, backend='memory')
        engine.load('items', BASE_ROWS)
        engine.define_view(luxury_strategy, validate_first=False)
        entry = engine.view('luxuryitems')
        engine.load('items', [(i, f'x{i}', 2000 + i)
                              for i in range(500)])

        def hammer():
            for _ in range(50):
                engine._maybe_replan(entry)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT)
        assert entry.replans >= 1
        assert entry.incremental_plan is not None
        assert entry.stats_seed['items'] == 500
        engine.close()
