"""Subprocess body for the SIGKILL crash-recovery tests.

Runs ``n`` single-row transactions against a WAL-backed engine, then
dies at a precise point in the commit path depending on ``mode``:

* ``clean``             — all ``n`` transactions commit, clean exit;
* ``kill-before-append``— SIGKILL *before* the last transaction's WAL
  append: the record never reaches the log, so recovery must show
  ``n - 1`` rows (the transaction never committed);
* ``kill-after-append`` — SIGKILL *after* the append but before the
  backend applies the batch: the append IS the commit point, so
  recovery must show all ``n`` rows;
* ``kill-torn``         — writes *half* a frame (a torn tail, as a
  crash mid-``write(2)`` would leave) and dies: recovery must truncate
  it and show ``n - 1`` rows;
* ``kill-checkpoint``   — all ``n`` transactions commit, then SIGKILL
  *during* :meth:`Engine.checkpoint`'s temp-file write (via the
  ``wal.checkpoint`` fault site): the atomic rename never ran, so the
  original log must be intact and recovery must show all ``n`` rows.

Usage:  python _wal_crash_child.py WAL_PATH N MODE
"""

import os
import signal
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.rdbms import faults                              # noqa: E402
from repro.rdbms.engine import Engine                       # noqa: E402
from repro.rdbms.wal import encode_record                   # noqa: E402
from repro.relational.schema import DatabaseSchema          # noqa: E402


def main() -> int:
    wal_path, n, mode = sys.argv[1], int(sys.argv[2]), sys.argv[3]
    schema = DatabaseSchema.build(r1={'a': 'int'})
    engine = Engine(schema, wal=wal_path)

    committed = n if mode in ('clean', 'kill-checkpoint') else n - 1
    for i in range(committed):
        engine.insert('r1', (i,))

    if mode == 'clean':
        engine.close()
        return 0

    if mode == 'kill-checkpoint':
        plan = faults.FaultPlan()
        plan.kill_checkpoint(record=1)
        faults.install(plan)
        engine.checkpoint()                         # never returns
        raise AssertionError('survived checkpoint kill')

    wal = engine.wal
    if mode == 'kill-torn':
        # A torn write: half of one frame reaches the disk, then the
        # process dies.  The payload content is irrelevant — the frame
        # is incomplete, so recovery must never unpickle it.
        frame = encode_record('commit', ((), frozenset(), frozenset()))
        wal._file.write(frame[:max(1, len(frame) // 2)])
        wal._file.flush()
        os.fsync(wal._file.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    original_append = wal.append

    def dying_append(kind, data):
        if mode == 'kill-before-append':
            os.kill(os.getpid(), signal.SIGKILL)
        lsn = original_append(kind, data)
        os.kill(os.getpid(), signal.SIGKILL)
        return lsn                                  # pragma: no cover

    wal.append = dying_append
    engine.insert('r1', (n - 1,))                   # never returns
    raise AssertionError(f'survived mode {mode!r}')  # pragma: no cover


if __name__ == '__main__':
    raise SystemExit(main())
