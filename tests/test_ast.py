"""Unit tests for AST helpers and the Program container."""

import pytest

from repro.datalog.ast import (Atom, BuiltinLit, Const, Lit, Program, Rule,
                               Var, delete_pred, delta_base,
                               fresh_var_factory, insert_pred, is_anonymous,
                               is_delete_pred, is_delta_pred,
                               is_insert_pred)
from repro.datalog.parser import parse_program, parse_rule


class TestDeltaNaming:

    def test_insert_pred(self):
        assert insert_pred('r') == '+r'

    def test_delete_pred(self):
        assert delete_pred('r') == '-r'

    def test_predicates_classified(self):
        assert is_insert_pred('+r') and not is_insert_pred('r')
        assert is_delete_pred('-r') and not is_delete_pred('+r')
        assert is_delta_pred('+r') and is_delta_pred('-r')
        assert not is_delta_pred('r')

    def test_delta_base(self):
        assert delta_base('+r') == 'r'
        assert delta_base('-r') == 'r'
        assert delta_base('r') == 'r'


class TestTerms:

    def test_anonymous_detection(self):
        assert is_anonymous(Var('_anon0'))
        assert is_anonymous(Var('_x'))
        assert not is_anonymous(Var('X'))
        assert not is_anonymous(Const('_'))

    def test_fresh_var_factory(self):
        gen = fresh_var_factory('T')
        assert next(gen) == Var('T0')
        assert next(gen) == Var('T1')

    def test_const_str_quotes_strings(self):
        assert str(Const('a')) == "'a'"
        assert str(Const(3)) == '3'


class TestAtom:

    def test_variables_in_order_with_repeats(self):
        atom = Atom('r', (Var('X'), Const(1), Var('Y'), Var('X')))
        assert atom.variables() == (Var('X'), Var('Y'), Var('X'))
        assert atom.var_names() == {'X', 'Y'}

    def test_is_ground(self):
        assert Atom('r', (Const(1), Const('a'))).is_ground()
        assert not Atom('r', (Var('X'),)).is_ground()

    def test_substitute(self):
        atom = Atom('r', (Var('X'), Var('Y')))
        result = atom.substitute({'X': Const(5)})
        assert result == Atom('r', (Const(5), Var('Y')))


class TestBuiltin:

    def test_normalize_negated_equality(self):
        builtin = BuiltinLit('=', Var('X'), Const(1), positive=False)
        normal = builtin.normalized()
        assert normal.op == '<>' and normal.positive

    def test_normalize_negated_comparison(self):
        builtin = BuiltinLit('<', Var('X'), Const(1), positive=False)
        assert builtin.normalized().op == '>='

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BuiltinLit('~', Var('X'), Const(1))


class TestRule:

    def test_positive_and_negative_atoms(self):
        rule = parse_rule('h(X) :- r(X), not s(X), X > 1.')
        assert [a.pred for a in rule.positive_atoms()] == ['r']
        assert [a.pred for a in rule.negative_atoms()] == ['s']
        assert len(rule.builtins()) == 1

    def test_variables(self):
        rule = parse_rule('h(X, Y) :- r(X, Z), not s(Y).')
        assert rule.variables() == {'X', 'Y', 'Z'}

    def test_rename_apart(self):
        rule = parse_rule('h(X) :- r(X, Y).')
        renamed = rule.rename_apart({'X'})
        assert 'X' not in renamed.variables()
        assert 'Y' in renamed.variables()

    def test_rename_apart_noop(self):
        rule = parse_rule('h(X) :- r(X).')
        assert rule.rename_apart({'Z'}) is rule

    def test_substitution_covers_head_and_body(self):
        rule = parse_rule('h(X) :- r(X), X > 1.')
        result = rule.substitute({'X': Var('W')})
        assert result.head.args == (Var('W'),)
        assert result.body[1].left == Var('W')


class TestProgram:

    def test_rules_for(self):
        program = parse_program('v(X) :- r1(X).\nv(X) :- r2(X).')
        assert len(program.rules_for('v')) == 2
        assert program.rules_for('missing') == ()

    def test_constraints_split(self):
        program = parse_program('⊥ :- v(X), X > 2.\n+r(X) :- v(X).')
        assert len(program.constraints()) == 1
        assert len(program.proper_rules()) == 1
        assert len(program.without_constraints()) == 1

    def test_extend(self):
        program = parse_program('v(X) :- r(X).')
        extended = program.extend(parse_program('w(X) :- v(X).').rules)
        assert extended.idb_preds() == {'v', 'w'}

    def test_iteration_and_len(self):
        program = parse_program('v(X) :- r(X).\nw(X) :- v(X).')
        assert len(list(program)) == len(program) == 2

    def test_all_preds(self):
        program = parse_program('v(X) :- r(X), not s(X).')
        assert program.all_preds() == {'v', 'r', 's'}
