"""FO model checking tests + cross-validation of the translation
pipeline (evaluator vs. direct FO interpretation)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.fol.datalog_to_fol import predicate_to_fol
from repro.fol.formula import (FoAtom, FoCmp, FoConst, FoEq, FoVar, Forall,
                               Not, make_and, make_exists, make_or)
from repro.fol.interpret import active_domain, answers, satisfies
from repro.fol.normalize import to_ranf, to_srnf
from repro.relational.database import Database


def r(*terms):
    return FoAtom('r', tuple(
        FoVar(t) if isinstance(t, str) and t.isupper() else FoConst(t)
        for t in terms))


class TestSatisfies:

    def test_atom(self):
        db = Database.from_dict({'r': {(1,)}})
        assert satisfies(db, r('X'), {'X': 1})
        assert not satisfies(db, r('X'), {'X': 2})

    def test_equality_and_comparison(self):
        db = Database.empty()
        assert satisfies(db, FoEq(FoConst(3), FoConst(3)))
        assert satisfies(db, FoCmp('<', FoConst(1), FoConst(2)))
        assert not satisfies(db, FoCmp('>=', FoConst(1), FoConst(2)))

    def test_connectives(self):
        db = Database.from_dict({'r': {(1,)}, 's': {(2,)}})
        formula = make_and([r('X'), Not(FoAtom('s', (FoVar('X'),)))])
        assert satisfies(db, formula, {'X': 1})
        disj = make_or([r('X'), FoAtom('s', (FoVar('X'),))])
        assert satisfies(db, disj, {'X': 2})

    def test_exists_over_active_domain(self):
        db = Database.from_dict({'r': {(1,), (5,)}})
        formula = make_exists((FoVar('X'),),
                              make_and([r('X'),
                                        FoCmp('>', FoVar('X'),
                                              FoConst(3))]))
        assert satisfies(db, formula)

    def test_forall(self):
        db = Database.from_dict({'r': {(1,), (2,)}})
        all_small = Forall((FoVar('X'),),
                           make_or([Not(r('X')),
                                    FoCmp('<', FoVar('X'), FoConst(10))]))
        assert satisfies(db, all_small)
        all_big = Forall((FoVar('X'),),
                         make_or([Not(r('X')),
                                  FoCmp('>', FoVar('X'), FoConst(1))]))
        assert not satisfies(db, all_big)

    def test_formula_constants_join_domain(self):
        db = Database.empty()
        domain = active_domain(db, FoEq(FoVar('X'), FoConst(42)))
        assert 42 in domain

    def test_answers(self):
        db = Database.from_dict({'r': {(1,), (2,), (5,)}})
        formula = make_and([r('X'), FoCmp('>', FoVar('X'), FoConst(1))])
        assert answers(db, formula) == {(2,), (5,)}


def _random_db(rng) -> Database:
    return Database.from_dict({
        'p': {(rng.randint(0, 2),) for _ in range(rng.randint(0, 3))},
        'q': {(rng.randint(0, 2), rng.randint(0, 2))
              for _ in range(rng.randint(0, 3))}})


PROGRAMS = [
    'goal(X) :- p(X).',
    'goal(X) :- p(X), not q(X, X).',
    'goal(X, Y) :- q(X, Y), p(Y).',
    'goal(X) :- q(X, _), X > 0.',
    'goal(X) :- p(X).\ngoal(X) :- q(X, X).',
    "mid(X) :- q(X, Y), Y = 1.\ngoal(X) :- p(X), not mid(X).",
]


class TestCrossValidation:
    """D ⊨ ϕ_goal(t) iff t ∈ eval(program)[goal]: the evaluator, the
    Datalog→FO translation, and the FO interpreter must agree."""

    @pytest.mark.parametrize('text', PROGRAMS)
    def test_translation_agrees_with_interpretation(self, text):
        program = parse_program(text)
        variables, formula = predicate_to_fol(program, 'goal')
        rng = random.Random(hash(text) % 1000)
        for _ in range(12):
            db = _random_db(rng)
            direct = evaluate(program, db)['goal']
            via_fo = answers(db, formula, variables)
            assert direct == via_fo, (text, db)

    @pytest.mark.parametrize('text', PROGRAMS)
    def test_srnf_ranf_preserve_semantics(self, text):
        program = parse_program(text)
        variables, formula = predicate_to_fol(program, 'goal')
        normalized = to_ranf(to_srnf(formula))
        rng = random.Random(hash(text) % 997)
        for _ in range(8):
            db = _random_db(rng)
            assert answers(db, formula, variables) == \
                answers(db, normalized, variables)


@given(st.frozensets(st.tuples(st.integers(0, 2)), max_size=4),
       st.frozensets(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                     max_size=4))
@settings(max_examples=60, deadline=None)
def test_property_difference_query(p_rows, q_rows):
    db = Database.from_dict({'p': p_rows, 'q': q_rows})
    program = parse_program('goal(X) :- p(X), not q(X, _).')
    variables, formula = predicate_to_fol(program, 'goal')
    assert evaluate(program, db)['goal'] == answers(db, formula, variables)
