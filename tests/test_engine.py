"""RDBMS engine tests: DML pipeline, constraints, transactions, caching,
and incremental-vs-full equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import UpdateStrategy
from repro.core.validation import validate
from repro.errors import (ConstraintViolation, SchemaError,
                          ValidationError)
from repro.fol.solver import SolverConfig
from repro.rdbms.engine import Engine
from repro.relational.schema import DatabaseSchema

FAST = SolverConfig(random_trials=40)


def union_engine(union_strategy, incremental=True):
    engine = Engine(union_strategy.sources)
    engine.load('r1', [(1,)])
    engine.load('r2', [(2,), (4,)])
    engine.define_view(union_strategy, validate_first=False,
                       use_incremental=incremental)
    return engine


class TestBasics:

    def test_base_table_dml(self, union_strategy):
        engine = Engine(union_strategy.sources)
        engine.insert('r1', (5,))
        assert engine.rows('r1') == {(5,)}
        engine.delete('r1', where={'a': 5})
        assert engine.rows('r1') == set()

    def test_view_materialization(self, union_strategy):
        engine = union_engine(union_strategy)
        assert engine.rows('v') == {(1,), (2,), (4,)}

    def test_view_insert_routes_to_r1(self, union_strategy):
        engine = union_engine(union_strategy)
        engine.insert('v', (3,))
        assert (3,) in engine.rows('r1')
        assert engine.rows('v') == {(1,), (2,), (3,), (4,)}

    def test_view_delete_routes_to_sources(self, union_strategy):
        engine = union_engine(union_strategy)
        engine.delete('v', where={'a': 2})
        assert engine.rows('r2') == {(4,)}

    def test_view_update_statement(self, union_strategy):
        engine = union_engine(union_strategy)
        engine.update('v', {'a': 9}, where={'a': 4})
        assert engine.rows('v') == {(1,), (2,), (9,)}

    def test_unknown_relation(self, union_strategy):
        engine = union_engine(union_strategy)
        with pytest.raises(SchemaError):
            engine.insert('nope', (1,))

    def test_duplicate_view_name(self, union_strategy):
        engine = union_engine(union_strategy)
        with pytest.raises(SchemaError):
            engine.define_view(union_strategy, validate_first=False)

    def test_load_validates(self, union_strategy):
        engine = Engine(union_strategy.sources)
        with pytest.raises(SchemaError):
            engine.load('r1', [('not-int',)])

    def test_invalid_strategy_rejected(self, union_sources):
        engine = Engine(union_sources)
        bad = UpdateStrategy.parse('v', union_sources, """
            +r1(X) :- v(X), r1(X).
            -r1(X) :- v(X), r1(X).
        """)
        with pytest.raises(ValidationError):
            engine.define_view(bad, report=validate(bad, config=FAST))


class TestConstraints:

    def _luxury_engine(self, luxury_strategy, incremental):
        engine = Engine(luxury_strategy.sources)
        engine.load('items', [(1, 'watch', 5000)])
        engine.define_view(luxury_strategy, validate_first=False,
                           use_incremental=incremental)
        return engine

    @pytest.mark.parametrize('incremental', [True, False])
    def test_violating_insert_rejected(self, luxury_strategy, incremental):
        engine = self._luxury_engine(luxury_strategy, incremental)
        with pytest.raises(ConstraintViolation):
            engine.insert('luxuryitems', (2, 'gum', 5))
        # Atomicity: nothing changed.
        assert engine.rows('items') == {(1, 'watch', 5000)}

    @pytest.mark.parametrize('incremental', [True, False])
    def test_valid_insert_accepted(self, luxury_strategy, incremental):
        engine = self._luxury_engine(luxury_strategy, incremental)
        engine.insert('luxuryitems', (2, 'yacht', 90000))
        assert (2, 'yacht', 90000) in engine.rows('items')


class TestTransactions:

    def test_net_noop_transaction(self, union_strategy):
        engine = union_engine(union_strategy)
        before = set(engine.rows('r1'))
        with engine.transaction() as txn:
            txn.insert('v', (9,))
            txn.delete('v', where={'a': 9})
        assert engine.rows('r1') == before

    def test_transaction_spans_relations(self, union_strategy):
        engine = union_engine(union_strategy)
        with engine.transaction() as txn:
            txn.insert('v', (7,))
            txn.insert('r2', (8,))
        assert (7,) in engine.rows('r1')
        assert (8,) in engine.rows('r2')
        assert engine.rows('v') >= {(7,), (8,)}

    def test_transaction_aborts_on_error(self, luxury_strategy):
        engine = Engine(luxury_strategy.sources)
        engine.load('items', [(1, 'watch', 5000)])
        engine.define_view(luxury_strategy, validate_first=False)
        with pytest.raises(ConstraintViolation):
            with engine.transaction() as txn:
                txn.insert('luxuryitems', (2, 'ring', 2000))
                txn.insert('luxuryitems', (3, 'gum', 1))  # violates
        assert engine.rows('items') == {(1, 'watch', 5000)}

    def test_exception_inside_block_skips_execution(self, union_strategy):
        engine = union_engine(union_strategy)
        with pytest.raises(RuntimeError):
            with engine.transaction() as txn:
                txn.insert('v', (9,))
                raise RuntimeError('user error')
        assert (9,) not in engine.rows('v')


class TestExecuteManyBatches:
    """Multi-target transactions: interleaved view+base writes, the
    keep-cache origin logic of ``Engine._commit``, and mid-batch
    rollback."""

    def test_interleaved_view_and_base_batches(self, union_strategy):
        from repro.rdbms.dml import Delete, Insert
        engine = union_engine(union_strategy)
        engine.rows('v')
        engine.execute_many([
            ('v', [Insert((7,))]),
            ('r2', [Insert((8,))]),
            ('v', [Insert((9,)), Delete({'a': 1})]),
        ])
        assert engine.rows('r1') == {(7,), (9,)}
        assert engine.rows('r2') == {(2,), (4,), (8,)}
        assert engine.rows('v') == {(2,), (4,), (7,), (8,), (9,)}

    def test_view_only_batch_keeps_cache(self, union_strategy):
        from repro.rdbms.dml import Insert
        engine = union_engine(union_strategy)
        engine.rows('v')
        assert engine.backend.has_cache('v')
        engine.execute_many([('v', [Insert((7,))])])
        # Every base write under v came from v's own pipeline: the
        # cache was maintained incrementally, not dropped.
        assert engine.backend.has_cache('v')
        assert engine.rows('v') == {(1,), (2,), (4,), (7,)}

    def test_foreign_base_write_drops_cache(self, union_strategy):
        from repro.rdbms.dml import Insert
        engine = union_engine(union_strategy)
        engine.rows('v')
        engine.execute_many([
            ('v', [Insert((7,))]),
            ('r1', [Insert((8,))]),      # '<direct>' origin under v
        ])
        # A direct write under the view makes its maintained cache
        # untrustworthy; it must be rematerialised on next read.
        assert not engine.backend.has_cache('v')
        assert engine.rows('v') == {(1,), (2,), (4,), (7,), (8,)}

    def test_midbatch_constraint_violation_rolls_back(self,
                                                      luxury_strategy):
        from repro.rdbms.dml import Insert
        engine = Engine(luxury_strategy.sources)
        engine.load('items', [(1, 'watch', 5000)])
        engine.define_view(luxury_strategy, validate_first=False)
        engine.rows('luxuryitems')
        cache_before = set(engine.rows('luxuryitems'))
        with pytest.raises(ConstraintViolation):
            engine.execute_many([
                ('items', [Insert((2, 'clock', 3000))]),
                ('luxuryitems', [Insert((3, 'ring', 2000))]),
                ('luxuryitems', [Insert((4, 'gum', 1))]),   # violates
            ])
        # No partial state: neither the staged base write, the staged
        # view write, nor the cache changed.
        assert engine.rows('items') == {(1, 'watch', 5000)}
        assert engine.rows('luxuryitems') == cache_before

    def test_midbatch_schema_error_rolls_back(self, union_strategy):
        from repro.errors import SchemaError
        from repro.rdbms.dml import Insert
        engine = union_engine(union_strategy)
        with pytest.raises(SchemaError):
            engine.execute_many([
                ('r1', [Insert((7,))]),
                ('r2', [Insert(('not-int',))]),
            ])
        assert (7,) not in engine.rows('r1')
        assert engine.rows('r2') == {(2,), (4,)}

    def test_batch_with_net_empty_delta_is_noop(self, union_strategy):
        from repro.rdbms.dml import Delete, Insert
        engine = union_engine(union_strategy)
        before = engine.database()
        engine.execute_many([
            ('v', [Insert((9,)), Delete({'a': 9})]),
            ('r1', []),
        ])
        assert engine.database() == before


class TestCaching:

    def test_cache_updated_incrementally(self, union_strategy):
        engine = union_engine(union_strategy)
        engine.rows('v')
        engine.insert('v', (3,))
        assert engine.rows('v') == {(1,), (2,), (3,), (4,)}

    def test_cache_invalidated_by_base_write(self, union_strategy):
        engine = union_engine(union_strategy)
        assert engine.rows('v') == {(1,), (2,), (4,)}
        engine.insert('r1', (10,))
        assert (10,) in engine.rows('v')

    def test_cache_consistent_with_recomputation(self, union_strategy):
        engine = union_engine(union_strategy)
        engine.insert('v', (3,))
        engine.delete('v', where={'a': 1})
        from repro.datalog.evaluator import evaluate
        recomputed = evaluate(union_strategy.expected_get,
                              engine.database())['v']
        assert engine.rows('v') == recomputed


class TestBatchedPipeline:
    """The delta-batched transaction pipeline: one plan run per view
    per transaction, byte-identical end states vs statement-at-a-time
    translation, and statement-order visibility inside a transaction."""

    BACKENDS = ('memory', 'sqlite')

    def _engines(self, strategy, backend):
        """(batched, statement-at-a-time) twin engines, same backend."""
        engines = []
        for batch in (True, False):
            engine = Engine(strategy.sources, backend=backend,
                            batch_deltas=batch)
            engine.load('r1', [(1,)])
            engine.load('r2', [(2,), (4,)])
            engine.define_view(strategy, validate_first=False)
            engine.rows('v')
            engines.append(engine)
        return engines

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_batched_matches_statement_at_a_time(self, union_strategy,
                                                 backend):
        from repro.rdbms.dml import Delete, Insert, Update
        batches = [
            ('v', [Insert((7,))]),
            ('v', [Insert((9,))]),
            ('r2', [Insert((8,))]),
            ('v', [Delete({'a': 1}), Insert((12,))]),
            ('v', [Update({'a': 109}, {'a': 9})]),
            ('r1', [Insert((30,))]),
            ('v', [Delete({'a': 8})]),
        ]
        batched, unbatched = self._engines(union_strategy, backend)
        batched.execute_many(batches)
        unbatched.execute_many(batches)
        assert batched.database() == unbatched.database()
        assert batched.backend.has_cache('v') \
            == unbatched.backend.has_cache('v')
        assert batched.rows('v') == unbatched.rows('v')

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_one_plan_run_per_transaction(self, union_strategy, backend):
        from repro.rdbms.dml import Insert
        for batch, expected in ((True, 1), (False, 50)):
            engine = Engine(union_strategy.sources, backend=backend,
                            batch_deltas=batch)
            engine.load('r1', [(1,)])
            engine.load('r2', [(2,)])
            engine.define_view(union_strategy, validate_first=False)
            engine.rows('v')
            calls = []
            original = engine.backend.evaluate_incremental_batch

            def counted(*args, _orig=original, **kwargs):
                calls.append(1)
                return _orig(*args, **kwargs)

            engine.backend.evaluate_incremental_batch = counted
            engine.execute_many([('v', [Insert((100 + i,))])
                                 for i in range(50)])
            assert len(calls) == expected, (batch, len(calls))
            assert engine.rows('v') >= {(100 + i,) for i in range(50)}

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_statement_order_visibility(self, union_strategy, backend):
        """A later bucket's WHERE sees earlier staged view writes: the
        insert+delete pair nets out even across an intervening bucket."""
        from repro.rdbms.dml import Delete, Insert
        for engine in self._engines(union_strategy, backend):
            engine.execute_many([
                ('v', [Insert((9,))]),
                ('r2', [Insert((8,))]),
                ('v', [Delete({'a': 9})]),
            ])
            assert engine.rows('r1') == {(1,)}
            assert (8,) in engine.rows('r2')
            assert (9,) not in engine.rows('v')

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_base_read_forces_pending_flush(self, union_strategy,
                                            backend):
        """A base bucket reading a table a pending view delta can still
        write forces that translation first — the delete must see the
        row the view insert routed into r1."""
        from repro.rdbms.dml import Delete, Insert
        for engine in self._engines(union_strategy, backend):
            engine.execute_many([
                ('v', [Insert((7,))]),
                ('r1', [Delete(None)]),
            ])
            assert engine.rows('r1') == set()

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_source_write_forces_pending_flush(self, backend):
        """Anti-dependency: a later bucket writing a relation a pending
        view's plan *reads* (but never writes) must not be visible to
        the deferred plan run — the pending translation flushes
        first, as statement-at-a-time would."""
        from repro.rdbms.dml import Delete, Insert
        from repro.relational.schema import DatabaseSchema
        sources = DatabaseSchema.build(r1={'a': 'int'},
                                       allowed={'a': 'int'})
        strategy = UpdateStrategy.parse('v', sources, """
            +r1(X) :- v(X), allowed(X), not r1(X).
            -r1(X) :- r1(X), not v(X).
        """, expected_get='v(X) :- r1(X).')
        results = []
        for batch in (True, False):
            engine = Engine(sources, backend=backend,
                            batch_deltas=batch)
            engine.load('r1', [(1,)])
            engine.load('allowed', [(1,), (7,)])
            engine.define_view(strategy, validate_first=False)
            engine.rows('v')
            engine.execute_many([
                ('v', [Insert((7,))]),
                ('allowed', [Delete({'a': 7})]),
            ])
            results.append(engine.database())
        batched, unbatched = results
        assert batched == unbatched
        assert batched['r1'] == {(1,), (7,)}

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_cascades_translate_depth_first(self, backend):
        """A cascade staged by one flush must land before a
        later-queued view's plan runs: w reads base b, which only v's
        cascade through u writes — batched and statement-at-a-time
        agree."""
        from repro.rdbms.dml import Insert
        from repro.relational.schema import DatabaseSchema
        base = DatabaseSchema.build(b={'a': 'int'}, c={'a': 'int'})
        layer = DatabaseSchema.build(u={'a': 'int'})
        u = UpdateStrategy.parse('u', base, """
            +b(X) :- u(X), not b(X).
            -b(X) :- b(X), not u(X).
        """, expected_get='u(X) :- b(X).')
        v = UpdateStrategy.parse('v', layer, """
            +u(X) :- v(X), not u(X).
            -u(X) :- u(X), not v(X).
        """, expected_get='v(X) :- u(X).')
        w = UpdateStrategy.parse('w', base, """
            +c(X) :- w(X), b(X), not c(X).
            -c(X) :- c(X), not w(X).
        """, expected_get='w(X) :- c(X).')
        results = []
        for batch in (True, False):
            engine = Engine(base, backend=backend, batch_deltas=batch)
            engine.load('b', [(1,)])
            engine.load('c', [(1,)])
            engine.define_view(u, validate_first=False)
            engine.define_view(v, validate_first=False)
            engine.define_view(w, validate_first=False)
            for view in ('u', 'v', 'w'):
                engine.rows(view)
            engine.execute_many([
                ('v', [Insert((7,))]),
                ('w', [Insert((7,))]),
            ])
            results.append(engine.database())
        batched, unbatched = results
        assert batched == unbatched
        assert batched['c'] == {(1,), (7,)}

    def test_deferred_constraint_semantics(self, luxury_strategy):
        """Batched mode checks ⊥-constraints against the transaction's
        net effect (deferred), statement-at-a-time against every
        intermediate state (immediate): a transient violation that the
        same transaction undoes commits in the former, raises in the
        latter."""
        from repro.rdbms.dml import Delete, Insert
        transient = [
            ('luxuryitems', [Insert((2, 'gum', 5))]),       # violates
            ('luxuryitems', [Delete({'iid': 2})]),          # ... undone
        ]
        for batch, outcome in ((True, 'commits'), (False, 'raises')):
            engine = Engine(luxury_strategy.sources, batch_deltas=batch)
            engine.load('items', [(1, 'watch', 5000)])
            engine.define_view(luxury_strategy, validate_first=False)
            if outcome == 'commits':
                engine.execute_many(transient)
            else:
                with pytest.raises(ConstraintViolation):
                    engine.execute_many(transient)
            assert engine.rows('items') == {(1, 'watch', 5000)}

    @pytest.mark.parametrize('backend', BACKENDS)
    def test_layered_views_batched_matches(self, ced_strategy, backend):
        """Cascading through a view-over-view layer produces identical
        end states batched and statement-at-a-time, including a bucket
        that reads the lower view mid-transaction."""
        from repro.rdbms.dml import Delete, Insert
        from repro.relational.schema import DatabaseSchema
        upper_sources = DatabaseSchema.build(
            ced=['emp_name', 'dept_name'])
        upper = UpdateStrategy.parse('cs_only', upper_sources, """
            +ced(E, D) :- cs_only(E), not ced(E, 'cs'), D = 'cs'.
            -ced(E, D) :- ced(E, D), D = 'cs', not cs_only(E).
        """, expected_get="cs_only(E) :- ced(E, 'cs').")
        engines = []
        for batch in (True, False):
            engine = Engine(ced_strategy.sources, backend=backend,
                            batch_deltas=batch)
            engine.load('ed', [('bob', 'cs'), ('carol', 'math'),
                               ('dan', 'cs')])
            engine.load('eed', [('dan', 'cs')])
            engine.define_view(ced_strategy, validate_first=False)
            engine.define_view(upper, validate_first=False)
            engine.rows('ced'), engine.rows('cs_only')
            engine.execute_many([
                ('cs_only', [Insert(('erin',))]),
                ('ced', [Delete({'emp_name': 'carol'})]),
                ('cs_only', [Delete({'emp_name': 'bob'})]),
            ])
            engines.append(engine)
        batched, unbatched = engines
        assert batched.database() == unbatched.database()
        assert batched.rows('ced') == unbatched.rows('ced')
        assert batched.rows('cs_only') == unbatched.rows('cs_only')
        assert ('erin', 'cs') in batched.rows('ced')


class TestIncrementalMatchesFull:

    @given(st.lists(st.tuples(st.sampled_from(['ins', 'del']),
                              st.integers(0, 8)), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_random_statement_sequences(self, ops):
        from tests.conftest import UNION_PUTDELTA, UNION_GET
        sources = DatabaseSchema.build(r1={'a': 'int'}, r2={'a': 'int'})
        strategy = UpdateStrategy.parse('v', sources, UNION_PUTDELTA,
                                        expected_get=UNION_GET)
        engines = []
        for incremental in (True, False):
            engine = Engine(sources)
            engine.load('r1', [(1,), (5,)])
            engine.load('r2', [(2,), (4,)])
            engine.define_view(strategy, validate_first=False,
                               use_incremental=incremental)
            engines.append(engine)
        for op, value in ops:
            for engine in engines:
                if op == 'ins':
                    engine.insert('v', (value,))
                else:
                    engine.delete('v', where={'a': value})
        fast, slow = engines
        assert fast.rows('r1') == slow.rows('r1')
        assert fast.rows('r2') == slow.rows('r2')
        assert fast.rows('v') == slow.rows('v')


class TestReplanOnDrift:
    """Plan-level statistics follow-up: a view's compiled plans are
    re-seeded when a source relation's cardinality drifts >10× from
    the stats the plans were compiled with (memory backend only — the
    SQLite backend delegates join ordering to SQLite's planner)."""

    JOIN_SOURCES = dict(small={'a': 'int'}, big={'a': 'int'})
    JOIN_PUTDELTA = """
        +small(X) :- j(X), not small(X).
        -small(X) :- small(X), not j(X).
    """
    JOIN_GET = 'j(X) :- small(X), big(X).'

    def _join_engine(self, backend='memory'):
        from repro.relational.schema import DatabaseSchema
        sources = DatabaseSchema.build(**self.JOIN_SOURCES)
        strategy = UpdateStrategy.parse('j', sources, self.JOIN_PUTDELTA,
                                        expected_get=self.JOIN_GET)
        engine = Engine(sources, backend=backend)
        engine.load('small', [(i,) for i in range(3)])
        engine.load('big', [(i,) for i in range(200)])
        entry = engine.define_view(strategy, validate_first=False)
        return engine, entry

    @staticmethod
    def _first_scan(entry):
        from repro.datalog.plan import ScanStep
        step = entry.get_plan.rules_for('j')[0].steps[0]
        assert isinstance(step, ScanStep)
        return step.pred

    def test_replan_picks_up_new_join_order(self):
        engine, entry = self._join_engine()
        assert entry.stats_seed == {'small': 3, 'big': 200}
        assert self._first_scan(entry) == 'small'
        old_plan = entry.get_plan
        # Invert the cardinalities far beyond the 10x threshold; the
        # next materialisation re-seeds the plans.
        engine.load('small', [(i,) for i in range(500)])
        engine.load('big', [(i,) for i in range(3)])
        assert engine.rows('j') == {(0,), (1,), (2,)}
        assert entry.replans == 1
        assert entry.get_plan is not old_plan
        assert self._first_scan(entry) == 'big'
        assert entry.stats_seed['small'] == 500

    def test_view_update_path_replans_and_stays_correct(self):
        engine, entry = self._join_engine()
        engine.load('big', [(i,) for i in range(3)])
        engine.delete('j', where={'a': 1})
        assert entry.replans == 1
        assert engine.rows('small') == {(0,), (2,)}
        assert engine.rows('j') == {(0,), (2,)}

    def test_no_replan_within_threshold(self):
        engine, entry = self._join_engine()
        engine.load('big', [(i,) for i in range(30)])   # < 10x drift
        engine.rows('j')
        assert entry.replans == 0
        assert entry.stats_seed['big'] == 200

    def test_sqlite_backend_never_replans(self):
        engine, entry = self._join_engine(backend='sqlite')
        engine.load('small', [(i,) for i in range(500)])
        engine.load('big', [(i,) for i in range(3)])
        engine.rows('j')
        engine.delete('j', where={'a': 1})
        assert entry.replans == 0

    def test_replan_is_idempotent_until_next_drift(self):
        engine, entry = self._join_engine()
        engine.load('big', [(i,) for i in range(3)])
        engine.rows('j')
        assert entry.replans == 1
        engine.insert('j', (0,))          # no-op effective delta
        engine.delete('j', where={'a': 0})
        assert entry.replans == 1         # stats re-seeded, no churn


class TestDropView:

    def test_drop_view_frees_the_name(self, union_strategy):
        engine = union_engine(union_strategy)
        engine.rows('v')
        engine.drop_view('v')
        assert not engine.is_view('v')
        assert not engine.backend.has_cache('v')
        engine.define_view(union_strategy, validate_first=False)
        assert engine.rows('v') == {(1,), (2,), (4,)}

    def test_drop_view_is_noop_for_unknown(self, union_strategy):
        engine = union_engine(union_strategy)
        engine.drop_view('nope')        # no error

    def test_drop_view_refuses_when_sourced_by_another_view(
            self, union_strategy):
        """Dropping a view another view reads would leave dangling
        catalog references."""
        engine = union_engine(union_strategy)
        from repro.core.strategy import UpdateStrategy
        from repro.relational.schema import RelationSchema
        layered = UpdateStrategy.parse(
            'w', union_strategy.sources.extend(
                RelationSchema('v', ('a',), ('int',))), """
            +v(X) :- w(X), not v(X).
            -v(X) :- v(X), not w(X).
        """, expected_get='w(X) :- v(X).')
        engine.define_view(layered, validate_first=False)
        with pytest.raises(SchemaError, match='reads or updates'):
            engine.drop_view('v')
        engine.drop_view('w')           # leaf view drops fine
        engine.drop_view('v')           # now unreferenced
