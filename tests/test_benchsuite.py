"""Benchmark suite tests: catalog integrity, Table 1 and Figure 6 runners.

Full-catalog validation lives in ``tests/test_table1_catalog.py`` (it is
the Table 1 reproduction itself); here we check structural invariants and
exercise the harnesses on small slices.
"""

import pytest

from repro.benchsuite.catalog import (ALL_ENTRIES, FIGURE6_VIEWS,
                                      entry_by_id, entry_by_name)
from repro.benchsuite.latency import percentile, summarize_latencies
from repro.benchsuite.runner import (format_fig6, format_table1, run_fig6,
                                     run_table1)
from repro.benchsuite.workload import build_engine, update_statement
from repro.core.lvgn import classify
from repro.errors import FragmentError


class TestCatalogIntegrity:

    def test_thirty_two_entries(self):
        assert len(ALL_ENTRIES) == 32
        assert [e.id for e in ALL_ENTRIES] == list(range(1, 33))

    def test_unique_names(self):
        names = [e.name for e in ALL_ENTRIES]
        assert len(set(names)) == 32

    def test_lookup_helpers(self):
        assert entry_by_name('luxuryitems').id == 3
        assert entry_by_id(23).name == 'emp_view'

    def test_sources_split(self):
        literature = [e for e in ALL_ENTRIES if e.source == 'literature']
        qa = [e for e in ALL_ENTRIES if e.source == 'qa']
        assert len(literature) == 23
        assert len(qa) == 9

    def test_only_emp_view_inexpressible(self):
        inexpressible = [e.name for e in ALL_ENTRIES if not e.expressible]
        assert inexpressible == ['emp_view']

    def test_emp_view_strategy_raises(self):
        with pytest.raises(FragmentError):
            entry_by_id(23).strategy()

    @pytest.mark.parametrize('entry', [e for e in ALL_ENTRIES
                                       if e.expressible],
                             ids=lambda e: e.name)
    def test_every_entry_parses(self, entry):
        strategy = entry.strategy()
        assert strategy.view.name == entry.name
        assert strategy.expected_get is not None

    @pytest.mark.parametrize('entry', [e for e in ALL_ENTRIES
                                       if e.expressible],
                             ids=lambda e: e.name)
    def test_fragment_matches_paper(self, entry):
        """Our re-authored strategies land in the same fragment column as
        the paper's Table 1."""
        strategy = entry.strategy()
        report = classify(strategy.putdelta, entry.name)
        assert report.nr_datalog == entry.paper.nr_datalog
        assert report.lvgn == entry.paper.lvgn, report.reasons

    def test_figure6_views_in_catalog(self):
        for view in FIGURE6_VIEWS:
            assert entry_by_name(view).expressible

    def test_sizes_scaling(self):
        entry = entry_by_name('tracks1')
        sizes = entry.sizes(1000)
        assert sizes['tracks'] == 1000
        assert sizes['albums'] == 200


class TestTable1Runner:

    def test_subset_run(self):
        entries = [entry_by_id(1), entry_by_id(5), entry_by_id(23)]
        rows = run_table1(entries, quick=True)
        assert len(rows) == 3
        assert rows[0].valid is True
        assert rows[0].sql_bytes and rows[0].sql_bytes > 1000
        assert rows[2].valid is None  # emp_view

    def test_formatting(self):
        entries = [entry_by_id(1), entry_by_id(23)]
        text = format_table1(run_table1(entries, quick=True))
        assert 'car_master' in text
        assert 'emp_view' in text
        assert 'yes' in text


class TestFig6Runner:

    def test_workload_engine_builds(self):
        entry = entry_by_name('luxuryitems')
        engine = build_engine(entry, 300, incremental=True)
        assert len(engine.rows('items')) == 300
        row = update_statement(entry, engine, 0)
        engine.insert('luxuryitems', row)
        assert row in engine.rows('items')

    @pytest.mark.parametrize('view', FIGURE6_VIEWS)
    def test_single_point(self, view):
        points = run_fig6([view], sizes=(200,), repeats=1)
        assert len(points) == 1
        point = points[0]
        assert point.original_seconds > 0
        assert point.incremental_seconds > 0

    def test_formatting(self):
        points = run_fig6(['vw_brands'], sizes=(100,), repeats=1)
        text = format_fig6(points)
        assert 'vw_brands' in text and 'speedup' in text

    def test_incremental_and_original_agree(self):
        entry = entry_by_name('officeinfo')
        engines = [build_engine(entry, 150, incremental=flag)
                   for flag in (True, False)]
        for i in range(4):
            row = update_statement(entry, engines[0], i)
            for engine in engines:
                engine.insert('officeinfo', row)
        assert engines[0].rows('works') == engines[1].rows('works')
        assert engines[0].rows('officeinfo') == \
            engines[1].rows('officeinfo')


class TestLatencySummaries:
    """The P50/P95/P99 estimator the BENCH JSONs are built on."""

    def test_percentile_interpolates_linearly(self):
        samples = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(samples, 0) == 10.0
        assert percentile(samples, 50) == 30.0
        assert percentile(samples, 100) == 50.0
        assert percentile(samples, 25) == 20.0
        assert percentile(samples, 90) == pytest.approx(46.0)

    def test_percentile_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_percentile_single_sample(self):
        assert percentile([7.5], 99) == 7.5

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError, match='empty'):
            percentile([], 50)
        with pytest.raises(ValueError, match=r'\[0, 100\]'):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match=r'\[0, 100\]'):
            percentile([1.0], -1)

    def test_summarize_converts_to_milliseconds(self):
        summary = summarize_latencies([0.001, 0.002, 0.003, 0.010])
        assert summary['n'] == 4
        assert summary['p50_ms'] == pytest.approx(2.5)
        assert summary['max_ms'] == pytest.approx(10.0)
        assert summary['mean_ms'] == pytest.approx(4.0)
        assert summary['p95_ms'] <= summary['p99_ms'] <= \
            summary['max_ms']
