"""Subprocess body for the peer SIGKILL crash-recovery test.

Builds a data-sharing peer over ``DIRECTORY``, applies ``K`` deltas of
a deterministic upstream feed (sender ``'upstream'``, delta ``i``
inserts ``('up:<i>', 'hq')`` at LSN ``i``), then SIGKILLs itself with
no shutdown of any kind.  The parent test reconstructs the peer over
the same directory and asserts rows and watermark both recovered
exactly — the apply and its acknowledgement are atomic (the ack note
rides in the commit record), so the kill can lose neither half.

Usage:  python _peer_crash_child.py DIRECTORY K
"""

import os
import signal
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / 'src'))

from repro.core.strategy import UpdateStrategy              # noqa: E402
from repro.rdbms.engine import Engine                       # noqa: E402
from repro.rdbms.peernet import Peer, ShareDelta            # noqa: E402
from repro.relational.schema import DatabaseSchema          # noqa: E402

VIEW = 'officeinfo'

# Mirrors tests/test_peernet.py (duplicated on purpose: this script
# runs standalone, outside any test package).
OFFICE_PUTDELTA = """
    in_office(N, O) :- works(N, O, _, _).
    +works(N, O, P, E) :- officeinfo(N, O), not in_office(N, O),
        P = 'n/a', E = 'n/a'.
    -works(N, O, P, E) :- works(N, O, P, E), not officeinfo(N, O).
"""
OFFICE_GET = "officeinfo(N, O) :- works(N, O, _, _)."


def factory(directory: Path) -> Engine:
    sources = DatabaseSchema.build(
        works={'wname': 'string', 'office': 'string',
               'phone': 'string', 'email': 'string'})
    strategy = UpdateStrategy.parse(VIEW, sources, OFFICE_PUTDELTA,
                                    expected_get=OFFICE_GET)
    engine = Engine(sources, wal=directory / 'engine.wal',
                    wal_sync=False)
    engine.define_view(strategy, validate_first=False, exist_ok=True)
    return engine


def main() -> int:
    directory, k = Path(sys.argv[1]), int(sys.argv[2])
    peer = Peer('victim', factory, directory, shares=())
    for lsn in range(1, k + 1):
        outcome = peer.receive(ShareDelta(
            'upstream', VIEW, lsn, frozenset({'upstream'}),
            frozenset({(f'up:{lsn}', 'hq')}), frozenset()))
        assert outcome == 'applied', outcome
    os.kill(os.getpid(), signal.SIGKILL)
    return 1                              # pragma: no cover - dead


if __name__ == '__main__':
    sys.exit(main())
