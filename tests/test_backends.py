"""Storage backend tests: the Backend interface, the SQLite backend's
SQL execution, interpreter fallback, and the cross-backend differential
anchor (identical workloads must yield bit-identical base states)."""

import sqlite3

import pytest

from repro.benchsuite.catalog import entry_by_name
from repro.benchsuite.workload import build_engine, update_statement
from repro.errors import ConstraintViolation, SchemaError
from repro.rdbms.backends import (MemoryBackend, SQLiteBackend,
                                  create_backend, default_backend_kind)
from repro.rdbms.engine import Engine

DIFFERENTIAL_VIEWS = ('luxuryitems', 'officeinfo', 'outstanding_task',
                      'vw_brands')


def _union_engine(union_strategy, backend):
    engine = Engine(union_strategy.sources, backend=backend)
    engine.load('r1', [(1,)])
    engine.load('r2', [(2,), (4,)])
    engine.define_view(union_strategy, validate_first=False)
    return engine


# ---------------------------------------------------------------------------
# Factory / configuration
# ---------------------------------------------------------------------------


class TestFactory:

    def test_known_backends(self, union_sources):
        assert isinstance(create_backend('memory', union_sources),
                          MemoryBackend)
        assert isinstance(create_backend('sqlite', union_sources),
                          SQLiteBackend)

    def test_unknown_backend_rejected(self, union_sources):
        with pytest.raises(SchemaError):
            create_backend('postgres', union_sources)

    def test_instance_passthrough(self, union_sources):
        backend = SQLiteBackend(union_sources)
        assert create_backend(backend, union_sources) is backend
        engine = Engine(union_sources, backend=backend)
        assert engine.backend is backend

    def test_env_default(self, union_sources, monkeypatch):
        monkeypatch.setenv('REPRO_BACKEND', 'sqlite')
        assert default_backend_kind() == 'sqlite'
        assert isinstance(Engine(union_sources).backend, SQLiteBackend)
        monkeypatch.setenv('REPRO_BACKEND', 'no-such-backend')
        with pytest.raises(SchemaError):
            default_backend_kind()


# ---------------------------------------------------------------------------
# SQLite backend behavior
# ---------------------------------------------------------------------------


class TestSQLiteEngine:

    def test_basic_view_dml(self, union_strategy):
        engine = _union_engine(union_strategy, 'sqlite')
        assert engine.rows('v') == {(1,), (2,), (4,)}
        engine.insert('v', (3,))
        assert (3,) in engine.rows('r1')
        engine.delete('v', where={'a': 2})
        assert engine.rows('r2') == {(4,)}
        engine.update('v', {'a': 9}, where={'a': 4})
        assert engine.rows('v') == {(1,), (3,), (9,)}

    def test_constraint_violation_via_sql(self, luxury_strategy):
        engine = Engine(luxury_strategy.sources, backend='sqlite')
        engine.load('items', [(1, 'watch', 5000)])
        engine.define_view(luxury_strategy, validate_first=False)
        with pytest.raises(ConstraintViolation):
            engine.insert('luxuryitems', (2, 'gum', 5))
        # Atomicity: neither SQLite tables nor the cache changed.
        assert engine.rows('items') == {(1, 'watch', 5000)}
        assert engine.rows('luxuryitems') == {(1, 'watch', 5000)}

    def test_plans_lower_to_sql(self, luxury_strategy):
        engine = Engine(luxury_strategy.sources, backend='sqlite')
        engine.define_view(luxury_strategy, validate_first=False)
        backend = engine.backend
        assert backend.lowering_fallbacks('luxuryitems') == []
        compiled = backend.compiled_sql('luxuryitems')
        assert any(key.startswith('get:') for key in compiled)
        assert any(key.startswith('incremental:') for key in compiled)
        assert all('SELECT' in sql for sql in compiled.values())

    def test_snapshot_round_trip_types(self, union_sources):
        schema = union_sources.extend()
        backend = SQLiteBackend(schema)
        backend.load('r1', {(1,), (2,)})
        backend.load('r2', set())
        snap = backend.snapshot()
        assert snap['r1'] == {(1,), (2,)}
        assert all(isinstance(v, int) for row in snap['r1'] for v in row)

    def test_file_backed_database_persists(self, union_strategy,
                                           tmp_path):
        path = str(tmp_path / 'engine.db')
        backend = SQLiteBackend(union_strategy.sources, path=path)
        engine = Engine(union_strategy.sources, backend=backend)
        engine.load('r1', [(1,)])
        engine.load('r2', [(2,)])
        engine.define_view(union_strategy, validate_first=False)
        engine.insert('v', (7,))
        backend.close()
        with sqlite3.connect(path) as conn:
            rows = set(conn.execute('SELECT * FROM r1'))
        assert rows == {(1,), (7,)}

    def test_interpreter_fallback_still_correct(self, union_strategy):
        """A view whose programs cannot lower to SQL runs interpreted —
        same results, storage still in SQLite."""
        engine = _union_engine(union_strategy, 'sqlite')
        reference = _union_engine(union_strategy, 'sqlite')
        compiled = engine.backend._compiled['v']
        compiled.get = None
        compiled.incremental = None
        compiled.putback = None
        compiled.fallbacks.append(('test', 'forced'))
        for e in (engine, reference):
            e.insert('v', (3,))
            e.delete('v', where={'a': 2})
        assert engine.database() == reference.database()
        assert engine.rows('v') == reference.rows('v')
        assert engine.backend.lowering_fallbacks('v')

    def test_lowering_failure_records_fallback(self, union_strategy,
                                               monkeypatch):
        from repro.errors import TransformationError
        import repro.rdbms.backends.sqlite as sqlite_mod

        def boom(*args, **kwargs):
            raise TransformationError('not expressible')

        monkeypatch.setattr(sqlite_mod, 'query_to_sql', boom)
        engine = _union_engine(union_strategy, 'sqlite')
        fallbacks = engine.backend.lowering_fallbacks('v')
        assert {label for label, _ in fallbacks} \
            == {'get', 'incremental putback', 'putback'}
        # The engine still works end to end, interpreted.
        engine.insert('v', (3,))
        assert (3,) in engine.rows('r1')

    def test_unknown_relation_rejected(self, union_sources):
        backend = SQLiteBackend(union_sources)
        with pytest.raises(SchemaError):
            backend.rows('nope')

    @pytest.mark.parametrize('backend', ['memory', 'sqlite'])
    def test_all_anonymous_constraint_witness(self, backend):
        """A ⊥-rule whose variables are all anonymous still lowers to a
        valid witness query (its SELECT head is the constant 1)."""
        from repro.core.strategy import UpdateStrategy
        from repro.relational.schema import DatabaseSchema
        sources = DatabaseSchema.build(r1={'a': 'int'},
                                       junk={'a': 'int'})
        strategy = UpdateStrategy.parse('v', sources, """
            ⊥ :- junk(_).
            +r1(X) :- v(X), not r1(X).
            -r1(X) :- r1(X), not v(X).
        """, expected_get='v(X) :- r1(X).')
        engine = Engine(sources, backend=backend)
        engine.load('junk', [(1,)])
        engine.define_view(strategy, validate_first=False)
        with pytest.raises(ConstraintViolation):
            engine.insert('v', (5,))
        assert engine.rows('r1') == set()

    def test_runtime_sql_error_demotes_to_interpreter(self,
                                                      union_strategy):
        """SQL that compiled but fails at execution time falls back to
        the interpreter (and stays demoted) instead of leaking a raw
        sqlite3 error."""
        from dataclasses import replace
        engine = _union_engine(union_strategy, 'sqlite')
        compiled = engine.backend._compiled['v']
        prog = compiled.incremental
        broken = tuple((goal, 'SELECT * FROM no_such_relation')
                       for goal, _ in prog.delta_sql)
        compiled.incremental = replace(prog, delta_sql=broken)
        engine.insert('v', (3,))
        assert (3,) in engine.rows('r1')
        assert compiled.incremental is None
        assert any(label == 'incremental' and 'runtime' in reason
                   for label, reason
                   in engine.backend.lowering_fallbacks('v'))


# ---------------------------------------------------------------------------
# Cross-backend differential anchor
# ---------------------------------------------------------------------------


def _run_workload(view: str, backend: str) -> Engine:
    """The same deterministic mixed workload on either backend."""
    entry = entry_by_name(view)
    engine = build_engine(entry, 400, incremental=True, backend=backend)
    engine.rows(view)                       # materialise the cache
    # Single-statement inserts through the view.
    for i in range(4):
        engine.insert(view, update_statement(entry, engine, i))
    # Delete one freshly inserted view tuple (full-attribute WHERE).
    victim = update_statement(entry, engine, 0)
    view_attrs = engine.view(view).schema.attributes
    engine.delete(view, where=dict(zip(view_attrs, victim)))
    # A transaction mixing view and direct base writes.
    base = sorted(engine.view(view).base_closure)[0]
    base_row = next(iter(sorted(engine.rows(base))))
    with engine.transaction() as txn:
        txn.insert(view, update_statement(entry, engine, 77))
        txn.delete(base, where=dict(
            zip(engine.schema[base].attributes, base_row)))
    return engine


class TestCrossBackendDifferential:

    @pytest.mark.parametrize('view', DIFFERENTIAL_VIEWS)
    def test_identical_base_states(self, view):
        memory = _run_workload(view, 'memory')
        sqlite_engine = _run_workload(view, 'sqlite')
        assert memory.database() == sqlite_engine.database()
        assert memory.rows(view) == sqlite_engine.rows(view)

    @pytest.mark.parametrize('view', DIFFERENTIAL_VIEWS)
    def test_batched_transaction_identical_states(self, view):
        """A many-statement batched transaction leaves both backends —
        and both translation modes — in the same state."""
        entry = entry_by_name(view)
        engines = {}
        for backend in ('memory', 'sqlite'):
            for batch in (True, False):
                engine = build_engine(entry, 300, incremental=True,
                                      backend=backend)
                engine.batch_deltas = batch
                engine.rows(view)
                with engine.transaction() as txn:
                    for i in range(8):
                        txn.insert(view,
                                   update_statement(entry, engine, i))
                    victim = update_statement(entry, engine, 3)
                    attrs = engine.view(view).schema.attributes
                    txn.delete(view, where=dict(zip(attrs, victim)))
                engines[(backend, batch)] = engine
        reference = engines[('memory', False)]
        for key, engine in engines.items():
            assert engine.database() == reference.database(), key
            assert engine.rows(view) == reference.rows(view), key

    def test_one_temp_stage_per_relation_per_transaction(
            self, luxury_strategy):
        """The batched pipeline stages the whole transaction's delta as
        one multi-row TEMP shadow per relation and commits in one SQL
        transaction — asserted via the SQL trace of a 100-statement
        view transaction."""
        from repro.rdbms.dml import Insert
        engine = Engine(luxury_strategy.sources, backend='sqlite')
        engine.load('items', [(1, 'watch', 5000)])
        engine.define_view(luxury_strategy, validate_first=False)
        engine.rows('luxuryitems')
        engine.insert('luxuryitems', (2, 'ring', 2000))      # warm up
        statements: list = []
        engine.backend._conn.set_trace_callback(statements.append)
        try:
            engine.execute_many([
                ('luxuryitems', [Insert((100 + i, f'item{i}', 2000 + i))])
                for i in range(100)])
        finally:
            engine.backend._conn.set_trace_callback(None)
        temp_creates: dict[str, int] = {}
        for sql in statements:
            if sql.startswith('CREATE TEMP TABLE'):
                name = sql.split('"')[1]
                temp_creates[name] = temp_creates.get(name, 0) + 1
        assert temp_creates, 'expected TEMP staging in the trace'
        # One multi-row stage per staged relation for the whole
        # 100-statement transaction, not one per statement.
        assert set(temp_creates.values()) == {1}, temp_creates
        assert sum(1 for sql in statements if sql == 'BEGIN') == 1
        assert engine.rows('items') >= {(100 + i, f'item{i}', 2000 + i)
                                        for i in range(100)}

    def test_random_statement_sequences_union(self, union_strategy):
        """Property-style sweep on the union view: every prefix of a
        mixed insert/delete sequence leaves both backends in the same
        base state."""
        ops = [('ins', 3), ('ins', 9), ('del', 2), ('ins', 2),
               ('del', 9), ('del', 1), ('ins', 5), ('del', 5)]
        engines = [_union_engine(union_strategy, kind)
                   for kind in ('memory', 'sqlite')]
        for op, value in ops:
            for engine in engines:
                if op == 'ins':
                    engine.insert('v', (value,))
                else:
                    engine.delete('v', where={'a': value})
            fast, slow = engines
            assert fast.database() == slow.database()
            assert fast.rows('v') == slow.rows('v')
