"""Write-ahead log tests: frame format, torn-tail truncation, engine
crash recovery (including real SIGKILL subprocesses dying mid-commit),
checkpoint compaction, and the O(|Δ|) record-size property the
replication design rests on.

Committed-prefix semantics under test: a transaction is committed
exactly when its record is fully in the log — dying *before* the
append loses the transaction, dying *after* the append (but before the
backend applies it) keeps it, and a torn final frame is truncated on
recovery, never half-applied.
"""

import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import SchemaError
from repro.rdbms import faults
from repro.rdbms.engine import Engine
from repro.rdbms.replica import ReplicaEngine
from repro.rdbms.wal import (WriteAheadLog, encode_record, read_records,
                             scan_tail)
from repro.relational.schema import DatabaseSchema

CHILD = Path(__file__).resolve().parent / '_wal_crash_child.py'


def _schema():
    return DatabaseSchema.build(r1={'a': 'int'})


class TestWalFile:

    def test_append_and_read_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path / 'w.wal', sync=False) as wal:
            assert wal.append('load', ('r1', frozenset({(1,)}))) == 1
            assert wal.append('drop_view', 'v') == 2
            assert wal.last_lsn == 2
        records = list(read_records(tmp_path / 'w.wal'))
        assert [(r.lsn, r.kind) for r in records] == [(1, 'load'),
                                                      (2, 'drop_view')]
        assert records[0].data == ('r1', frozenset({(1,)}))

    def test_read_after_skips_committed_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path / 'w.wal', sync=False) as wal:
            for i in range(5):
                wal.append('drop_view', f'v{i}')
        lsns = [r.lsn for r in read_records(tmp_path / 'w.wal', after=3)]
        assert lsns == [4, 5]

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(SchemaError, match='unknown WAL record'):
            encode_record('bogus', None)
        with WriteAheadLog(tmp_path / 'w.wal', sync=False) as wal:
            with pytest.raises(SchemaError):
                wal.append('bogus', None)

    def test_reopen_continues_lsns(self, tmp_path):
        path = tmp_path / 'w.wal'
        with WriteAheadLog(path, sync=False) as wal:
            wal.append('drop_view', 'a')
        with WriteAheadLog(path, sync=False) as wal:
            assert wal.last_lsn == 1
            assert wal.append('drop_view', 'b') == 2

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / 'w.wal'
        with WriteAheadLog(path, sync=False) as wal:
            wal.append('drop_view', 'a')
            wal.append('drop_view', 'b')
        frame = encode_record('drop_view', 'torn')
        with open(path, 'ab') as handle:
            handle.write(frame[:len(frame) // 2])
        tail = scan_tail(path)
        assert tail.torn and tail.last_lsn == 2
        # Readers stop at the torn frame without the writer's help.
        assert [r.data for r in read_records(path)] == ['a', 'b']
        with WriteAheadLog(path, sync=False) as wal:
            assert wal.stats['truncated_tails'] == 1
            assert wal.last_lsn == 2
            wal.append('drop_view', 'c')        # appends continue
        assert [r.data for r in read_records(path)] == ['a', 'b', 'c']

    def test_crc_corruption_ends_committed_prefix(self, tmp_path):
        path = tmp_path / 'w.wal'
        with WriteAheadLog(path, sync=False) as wal:
            wal.append('drop_view', 'a')
            wal.append('drop_view', 'b')
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF                        # corrupt b's payload
        path.write_bytes(bytes(data))
        assert [r.data for r in read_records(path)] == ['a']
        assert scan_tail(path).last_lsn == 1

    def test_read_records_missing_file_is_empty(self, tmp_path):
        assert list(read_records(tmp_path / 'nope.wal')) == []

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / 'not.wal'
        path.write_bytes(b'PK\x03\x04 definitely not a WAL header')
        with pytest.raises(SchemaError, match='not a repro WAL'):
            scan_tail(path)

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / 'w.wal', sync=False)
        wal.close()
        wal.close()                             # idempotent
        with pytest.raises(SchemaError, match='closed'):
            wal.append('drop_view', 'a')

    def test_fsync_failure_poisons_the_log(self, tmp_path):
        """An append whose flush/fsync fails may have left a torn tail
        on disk, so the handle refuses every further append until
        reopened — crash-consistency over limping along."""
        path = tmp_path / 'w.wal'
        wal = WriteAheadLog(path, sync=False)
        wal.append('drop_view', 'a')
        plan = faults.FaultPlan()
        plan.fail_fsync()
        with plan.installed():
            with pytest.raises(OSError):
                wal.append('drop_view', 'b')
        assert plan.fired('wal.fsync') == 1     # not vacuous
        assert wal.stats['append_failures'] == 1
        with pytest.raises(SchemaError, match='reopen to recover'):
            wal.append('drop_view', 'c')
        wal.close()
        # Reopening recovers the committed prefix ('b' hit the OS —
        # only the fsync was injected to fail) and appends continue.
        with WriteAheadLog(path, sync=False) as recovered:
            assert recovered.last_lsn == 2
            assert recovered.append('drop_view', 'd') == 3


class TestEngineRecovery:

    def _build(self, union_strategy, path):
        engine = Engine(union_strategy.sources, wal=path, wal_sync=False)
        engine.load('r1', [(1,)])
        engine.load('r2', [(2,), (4,)])
        engine.define_view(union_strategy, validate_first=False)
        engine.insert('v', (3,))
        with engine.transaction() as txn:
            txn.insert('v', (9,))
            txn.delete('v', where={'a': 4})
        return engine

    def test_recovery_replays_to_identical_state(self, union_strategy,
                                                 tmp_path):
        path = tmp_path / 'e.wal'
        engine = self._build(union_strategy, path)
        expected_db = engine.database()
        expected_view = frozenset(engine.rows('v'))
        lsn = engine.commit_lsn
        engine.close()
        recovered = Engine(union_strategy.sources, wal=path,
                           wal_sync=False)
        try:
            assert recovered.database() == expected_db
            assert frozenset(recovered.rows('v')) == expected_view
            assert recovered.commit_lsn == lsn
            recovered.insert('v', (11,))        # still writable
            assert recovered.commit_lsn == lsn + 1
        finally:
            recovered.close()

    def test_drop_view_recovers(self, union_strategy, tmp_path):
        path = tmp_path / 'e.wal'
        engine = self._build(union_strategy, path)
        engine.drop_view('v')
        engine.close()
        recovered = Engine(union_strategy.sources, wal=path,
                           wal_sync=False)
        try:
            assert not recovered.is_view('v')
        finally:
            recovered.close()

    def test_checkpoint_compacts_and_preserves_state(self,
                                                     union_strategy,
                                                     tmp_path):
        path = tmp_path / 'e.wal'
        engine = self._build(union_strategy, path)
        for i in range(40):
            engine.insert('v', (100 + i,))
        records_before = sum(1 for _ in read_records(path))
        lsn_before = engine.commit_lsn
        expected_db = engine.database()
        new_lsn = engine.checkpoint()
        assert new_lsn >= lsn_before            # LSNs stay monotonic
        assert engine.commit_lsn == new_lsn
        records_after = sum(1 for _ in read_records(path))
        assert records_after < records_before   # compacted
        engine.insert('v', (999,))              # log keeps working
        engine.close()
        recovered = Engine(union_strategy.sources, wal=path,
                           wal_sync=False)
        try:
            assert recovered.database()['r1'] \
                == expected_db['r1'] | {(999,)}
            assert (9,) in recovered.rows('v')
        finally:
            recovered.close()

    def test_checkpoint_requires_wal(self, union_sources):
        engine = Engine(union_sources)
        try:
            with pytest.raises(SchemaError, match='no write-ahead log'):
                engine.checkpoint()
        finally:
            engine.close()

    def test_replica_catches_up_across_checkpoint(self, union_strategy,
                                                  tmp_path):
        path = tmp_path / 'e.wal'
        engine = self._build(union_strategy, path)
        replica = ReplicaEngine(union_strategy.sources, engine.wal)
        try:
            replica.catch_up()
            engine.insert('v', (50,))
            engine.checkpoint()                 # replica is mid-history
            engine.insert('v', (51,))
            assert replica.lag() > 0
            replica.catch_up()
            assert replica.database() == engine.database()
            assert frozenset(replica.rows('v')) \
                == frozenset(engine.rows('v'))
        finally:
            replica.close()
            engine.close()

    def test_record_bytes_track_delta_not_db(self, union_strategy,
                                             tmp_path):
        """The replication-cost property: one transaction's record size
        depends on |Δ|, not |DB|."""
        sizes = {}
        for tag, n in (('small', 100), ('large', 10_000)):
            engine = Engine(union_strategy.sources,
                            wal=tmp_path / f'{tag}.wal', wal_sync=False)
            try:
                engine.load('r1', [(i,) for i in range(n)])
                engine.define_view(union_strategy, validate_first=False)
                engine.insert('v', (1_000_000,))
                sizes[tag] = engine.wal.stats['last_record_bytes']
            finally:
                engine.close()
        assert sizes['small'] == sizes['large']

    def test_primary_rows_accepts_min_lsn(self, union_strategy,
                                          tmp_path):
        """``min_lsn`` is the uniform read signature: on the primary it
        is trivially satisfied (the primary is never behind itself)."""
        engine = self._build(union_strategy, tmp_path / 'e.wal')
        try:
            rows = engine.rows('v', min_lsn=engine.commit_lsn)
            assert (3,) in rows
        finally:
            engine.close()


class TestCrashRecovery:
    """Real SIGKILLs: a child process dies at a precise point in the
    commit path and the parent recovers from its log."""

    N = 5

    def _crash(self, tmp_path, mode):
        path = tmp_path / 'crash.wal'
        proc = subprocess.run(
            [sys.executable, str(CHILD), str(path), str(self.N), mode],
            capture_output=True, text=True, timeout=120)
        return path, proc

    def _recovered_rows(self, path):
        engine = Engine(_schema(), wal=path, wal_sync=False)
        try:
            return set(engine.rows('r1'))
        finally:
            engine.close()

    def test_clean_run_commits_everything(self, tmp_path):
        path, proc = self._crash(tmp_path, 'clean')
        assert proc.returncode == 0, proc.stderr
        assert self._recovered_rows(path) \
            == {(i,) for i in range(self.N)}

    def test_kill_before_append_loses_the_transaction(self, tmp_path):
        path, proc = self._crash(tmp_path, 'kill-before-append')
        assert proc.returncode == -signal.SIGKILL
        assert self._recovered_rows(path) \
            == {(i,) for i in range(self.N - 1)}

    def test_kill_after_append_keeps_the_transaction(self, tmp_path):
        """The WAL append is the commit point: the backend never
        applied this batch, but recovery must."""
        path, proc = self._crash(tmp_path, 'kill-after-append')
        assert proc.returncode == -signal.SIGKILL
        assert self._recovered_rows(path) \
            == {(i,) for i in range(self.N)}

    def test_kill_torn_tail_is_truncated(self, tmp_path):
        path, proc = self._crash(tmp_path, 'kill-torn')
        assert proc.returncode == -signal.SIGKILL
        assert scan_tail(path).torn
        assert self._recovered_rows(path) \
            == {(i,) for i in range(self.N - 1)}
        # Recovery truncated the torn frame physically.
        with WriteAheadLog(path, sync=False) as wal:
            assert wal.stats['truncated_tails'] == 0  # already clean

    def test_kill_during_checkpoint_preserves_log(self, tmp_path):
        """The checkpoint satellite: SIGKILL while the snapshot temp
        file is being written.  The atomic rename never ran, so the
        original log is untouched — recovery shows every committed
        transaction, and the stale temp is swept on reopen."""
        path, proc = self._crash(tmp_path, 'kill-checkpoint')
        assert proc.returncode == -signal.SIGKILL
        temp = path.with_name(path.name + '.ckpt')
        assert temp.exists()                    # died mid-temp-write
        assert not scan_tail(path).torn         # old log fully intact
        assert self._recovered_rows(path) \
            == {(i,) for i in range(self.N)}
        assert not temp.exists()                # reopen swept it
