"""Property-based differential fuzzing of the execution modes.

With four execution axes live (memory/SQLite storage × batched/
statement-at-a-time translation × sharded/single deployment ×
thread-pooled parallel/serial fan-out), the equivalence surface has
outgrown hand-written differential tests; this
package is the repo's standing randomized oracle.  See
``strategies.py`` for the workload generator and ``test_differential``
for the assertions.
"""
