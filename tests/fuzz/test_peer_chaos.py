"""The peer chaos axis: a 3-peer full-mesh data-sharing network under
randomized workloads and deterministic fault injection must converge
**bit-identically** to a fault-free oracle — a single engine that
applied every transaction directly.

Peers own disjoint key spaces (rows are prefixed with their
originating peer), the precondition for convergence without global
coordination: all cross-peer operations commute, and each key's
updates are totally ordered by its owner's outbox.  Under that
precondition the network's machinery — per-link LSN watermarks,
per-root apply watermarks, durable outboxes, retry/quarantine/heal,
crash restart from the WAL — must absorb dropped, duplicated,
delayed, reordered and stalled deliveries plus receiver crashes with
zero lost and zero double-applied deltas.

Profiles as in ``test_chaos``: CI runs the bounded smoke
(``--hypothesis-profile=ci``); the pinned corpus of verified
non-vacuous scenarios (the fault demonstrably fired) replays under
every profile."""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip('hypothesis')
from hypothesis import example, given, settings, strategies as st  # noqa: E402

from repro.rdbms import faults                                     # noqa: E402
from repro.rdbms.dml import Delete, Insert                         # noqa: E402
from repro.rdbms.engine import Engine                              # noqa: E402
from repro.rdbms.peernet import PeerNetwork, converged             # noqa: E402

from .strategies import _strategy                                  # noqa: E402

VIEW = 'officeinfo'
PEERS = ('p0', 'p1', 'p2')
LINKS = tuple(f'{a}->{b}' for a in PEERS for b in PEERS if a != b)

PEER_FAULTS = ('drop', 'dup', 'reorder', 'delay', 'outage', 'crash')

#: Scenarios pinned because the fault demonstrably fired — the
#: non-vacuous corpus that must stay green under every profile.
SEED_CORPUS = [(3, 'drop'), (3, 'dup'), (3, 'reorder'), (3, 'delay'),
               (3, 'outage'), (3, 'crash'),
               (11, 'drop'), (11, 'outage'), (11, 'crash'),
               (29, 'dup'), (29, 'reorder')]


class _Clock:
    """Deterministic time for the network's retry backoff: ``sleep``
    advances it, nothing blocks the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _plan_for(fault: str, rng: random.Random) -> faults.FaultPlan:
    plan = faults.FaultPlan()
    link = rng.choice(LINKS)
    hit = rng.randint(1, 3)
    if fault == 'drop':
        for _ in range(rng.randint(1, 3)):   # consecutive losses
            plan.drop_peer(link=link, hit=hit)
    elif fault == 'dup':
        plan.dup_peer(link=link, hit=hit)
    elif fault == 'reorder':
        plan.reorder_peer(link=link, hit=hit)
    elif fault == 'delay':
        plan.delay_peer(link=link, hit=hit, seconds=0.001)
    elif fault == 'outage':
        plan.stall_link(link=link, once=False)
    elif fault == 'crash':
        plan.crash_peer(peer=rng.choice(PEERS), hit=hit)
    else:
        raise KeyError(fault)
    return plan


def _factory(strategy):
    def build(directory: Path) -> Engine:
        engine = Engine(strategy.sources,
                        wal=directory / 'engine.wal', wal_sync=False)
        engine.define_view(strategy, validate_first=False,
                           exist_ok=True)
        return engine
    return build


def _check_monotonic(net, previous: dict) -> dict:
    """Watermarks only ever advance — per link and per root, across
    pumps, restarts and retries."""
    snapshot = {}
    for name, peer in net.peers.items():
        for key, lsn in peer.watermarks.items():
            snapshot[(name, 'link', key)] = lsn
        for root, lsn in peer._applied_roots.items():
            snapshot[(name, 'root', root)] = lsn
    for key, lsn in previous.items():
        assert snapshot.get(key, 0) >= lsn, (
            f'watermark regressed: {key} went {lsn} -> '
            f'{snapshot.get(key, 0)}')
    return snapshot


def run_peer_chaos(seed: int, fault: str) -> bool:
    """One chaos scenario: the faulted mesh vs the fault-free
    single-engine oracle on the same seeded workload.  Returns whether
    the fault actually fired (for corpus vetting)."""
    strategy = _strategy(VIEW)
    rng = random.Random(seed)
    plan = _plan_for(fault, random.Random(seed ^ 0x5EED5))
    clock = _Clock()
    with tempfile.TemporaryDirectory(prefix='repro-peer-chaos-') as tmp:
        base = Path(tmp)
        net = PeerNetwork(retry_backoff=0.01, quarantine_after=3,
                          clock=clock, sleep=clock.sleep)
        oracle = Engine(strategy.sources)
        oracle.define_view(strategy, validate_first=False)
        try:
            for name in PEERS:
                net.add_peer(name, _factory(strategy), base / name,
                             shares=(VIEW,))
            net.share(VIEW, PEERS)
            live = {name: [] for name in PEERS}   # each peer's own rows
            counter = 0
            watermarks: dict = {}
            with plan.installed():
                for _ in range(10):
                    owner = rng.choice(PEERS)
                    rows = live[owner]
                    if rows and rng.random() < 0.35:
                        victim = rows.pop(rng.randrange(len(rows)))
                        statements = [Delete(dict(
                            zip(('wname', 'office'), victim)))]
                    else:
                        counter += 1
                        row = (f'{owner}:k{counter}',
                               f'office_{rng.randrange(4)}')
                        rows.append(row)
                        statements = [Insert(row)]
                    net.peers[owner].engine.execute(VIEW, statements)
                    oracle.execute(VIEW, statements)
                    for _ in range(rng.randint(0, 2)):
                        net.pump()
                    watermarks = _check_monotonic(net, watermarks)
                net.settle(max_rounds=300)
            # The outage (if any) ends; quarantined links catch up
            # from the durable outboxes — anti-entropy.
            net.heal()
            assert net.settle(), f'mesh failed to drain under {fault}'
            watermarks = _check_monotonic(net, watermarks)
            expected = frozenset(tuple(r) for r in oracle.rows(VIEW))
            for name, peer in net.peers.items():
                assert peer.rows(VIEW) == expected, (
                    f'peer {name} diverged from the fault-free oracle '
                    f'under {fault} (seed {seed})')
            assert converged(net.peers.values(), VIEW)
            # Crash recovery must also hold for a *final* restart:
            # every peer rebuilt from its logs still agrees.
            for name in PEERS:
                restarted = net.restart_peer(name)
                assert restarted.rows(VIEW) == expected
            _check_monotonic(net, watermarks)
            return plan.fired() > 0
        finally:
            net.close()
            oracle.close()


@given(seed=st.integers(min_value=0, max_value=2 ** 20),
       fault=st.sampled_from(PEER_FAULTS))
@example(seed=3, fault='outage')
@example(seed=3, fault='crash')
@example(seed=11, fault='drop')
@settings(deadline=None)
def test_faulted_mesh_matches_fault_free_oracle(seed, fault):
    """The acceptance property: under every generated workload and
    fault placement the mesh converges bit-identically to the oracle.
    (Whether the fault fires depends on traffic — the pinned corpus
    guarantees non-vacuity; the invariant must hold either way.)"""
    run_peer_chaos(seed, fault)


@pytest.mark.parametrize('seed,fault', SEED_CORPUS)
def test_peer_chaos_corpus_faults_fire_and_state_survives(seed, fault):
    """The vetted corpus: these scenarios demonstrably inject *and*
    converge — peer chaos coverage can't silently go vacuous."""
    assert run_peer_chaos(seed, fault), (
        f'corpus scenario ({seed}, {fault}) no longer injects its '
        f'fault — re-pin a live scenario')
