"""The chaos axis: randomized workloads under deterministic fault
injection.  A process-backed cluster whose workers are killed, whose
RPCs are dropped, or whose logs tear mid-append must end every
workload with committed state **bit-identical** to a fault-free
oracle — no committed transaction is ever lost, no aborted transaction
ever leaks, and the per-shard LSN vectors match exactly.

The oracle is the *same* WAL-backed sharded configuration run with
thread execution: identical routing, identical logs, zero injected
faults (the fault sites — ``worker.dispatch``, ``rpc.send`` — only
exist on the process path, so one plan can stay installed for the
whole run without touching the oracle).  Kill rules are inherited by
the forked workers; ``generation=0`` matching spares restarted
incarnations, so a kill fires exactly once and recovery proceeds.

Profiles as in ``test_differential``: CI runs the bounded smoke
(``--hypothesis-profile=ci``); a pinned corpus of verified-non-vacuous
scenarios (the fault demonstrably fired) replays under every profile.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip('hypothesis')
from hypothesis import example, given, settings, strategies as st  # noqa: E402

from repro.errors import ReproError                                # noqa: E402
from repro.rdbms import faults                                     # noqa: E402
from repro.rdbms.sharded import ShardedEngine                      # noqa: E402

from .strategies import (FUZZ_VIEWS, SHARD_KEYS, _strategy,        # noqa: E402
                         random_workload)

#: Fault scenarios the chaos axis cycles through.  ``kill-apply`` is
#: the hardest: SIGKILL inside the apply phase, *before* the worker's
#: commit-point append, while sibling shards have already applied —
#: the coordinator must repair the shard from its prepare reply.
CHAOS_FAULTS = ('kill-apply', 'kill-prepare', 'drop-rpc')

#: Scenarios pinned because the fault demonstrably fired (a worker
#: restarted, or the coordinator counted the dropped RPC) — the
#: non-vacuous corpus that must stay green under every profile.
SEED_CORPUS = [('luxuryitems', 7, 'kill-apply'),
               ('luxuryitems', 7, 'kill-prepare'),
               ('luxuryitems', 7, 'drop-rpc'),
               ('officeinfo', 7, 'kill-apply'),
               ('officeinfo', 7, 'drop-rpc'),
               ('outstanding_task', 23, 'kill-apply'),
               ('outstanding_task', 7, 'kill-prepare'),
               ('vw_brands', 7, 'kill-apply'),
               ('vw_brands', 7, 'kill-prepare')]


def _plan_for(fault: str, seed: int) -> faults.FaultPlan:
    shard = seed % 3
    hit = 1 + (seed >> 3) % 2
    plan = faults.FaultPlan(seed=seed)
    if fault == 'kill-apply':
        plan.kill_worker(shard=shard, method='apply_prepared', hit=hit)
    elif fault == 'kill-prepare':
        plan.kill_worker(shard=shard, method='prepare_commit', hit=hit)
    elif fault == 'drop-rpc':
        plan.drop_rpc(shard=shard, method='prepare_commit', hit=hit)
    else:
        raise KeyError(fault)
    return plan


def run_chaos(view: str, seed: int, fault: str) -> bool:
    """One chaos scenario: the faulted process cluster vs the
    fault-free thread oracle on the ``(view, seed)`` workload.
    Returns whether the fault actually fired (for corpus vetting)."""
    workload = random_workload(view, seed)
    strategy = _strategy(view)
    plan = _plan_for(fault, seed)
    with tempfile.TemporaryDirectory(prefix='repro-chaos-') as tmp:
        base = Path(tmp)
        with plan.installed():
            # The victim forks FIRST (workers inherit the installed
            # plan and nothing else); the oracle's thread pools and
            # logs come after, out of the children's address space.
            victim = ShardedEngine(strategy.sources, shards=3,
                                   shard_keys=SHARD_KEYS[view],
                                   execution='processes',
                                   wal_dir=base / 'victim',
                                   wal_sync=False,
                                   transient_retries=3,
                                   retry_backoff=0.01)
            oracle = ShardedEngine(strategy.sources, shards=3,
                                   shard_keys=SHARD_KEYS[view],
                                   execution='threads',
                                   wal_dir=base / 'oracle',
                                   wal_sync=False)
            try:
                for engine in (victim, oracle):
                    for name in strategy.sources.names():
                        engine.load(name, workload.data[name])
                    engine.define_view(strategy, validate_first=False)
                    engine.rows(view)
                for number, transaction in enumerate(
                        workload.transactions):
                    outcomes = {}
                    for name, engine in (('victim', victim),
                                         ('oracle', oracle)):
                        try:
                            engine.execute_many(transaction)
                            outcomes[name] = None
                        except ReproError as error:
                            outcomes[name] = type(error).__name__
                    assert outcomes['victim'] == outcomes['oracle'], (
                        f'divergent raise behavior under {fault} on '
                        f'{workload!r} transaction #{number}: {outcomes}')
                    assert victim.database() == oracle.database(), (
                        f'committed state diverged under {fault} on '
                        f'{workload!r} transaction #{number}')
                    assert frozenset(victim.rows(view)) \
                        == frozenset(oracle.rows(view))
                # The commit points themselves: every shard's log has
                # exactly the oracle's LSN — no committed record lost,
                # none double-appended by the repair path.
                assert victim.commit_lsns() == oracle.commit_lsns(), (
                    f'LSN vectors diverged under {fault} on {workload!r}')
                restarted = any(shard.generation > 0
                                for shard in victim.shards)
                return restarted or plan.fired('rpc.send') > 0
            finally:
                victim.close()
                oracle.close()


@given(view=st.sampled_from(FUZZ_VIEWS),
       seed=st.integers(min_value=0, max_value=2 ** 20),
       fault=st.sampled_from(CHAOS_FAULTS))
@example(view='luxuryitems', seed=7, fault='kill-apply')
@example(view='outstanding_task', seed=23, fault='kill-apply')
@example(view='officeinfo', seed=7, fault='drop-rpc')
@settings(deadline=None)
def test_faulted_cluster_matches_fault_free_oracle(view, seed, fault):
    """The acceptance property: under every generated workload and
    fault placement, the surviving cluster's committed state and LSN
    vector are bit-identical to the fault-free oracle.  (Whether the
    fault fires depends on routing — the pinned corpus guarantees
    non-vacuity; here the invariant must hold either way.)"""
    run_chaos(view, seed, fault)


@pytest.mark.parametrize('view,seed,fault', SEED_CORPUS)
def test_chaos_corpus_faults_fire_and_state_survives(view, seed, fault):
    """The vetted corpus: these scenarios demonstrably inject (a
    worker restarted or an RPC dropped) *and* converge — chaos
    coverage can't silently go vacuous."""
    assert run_chaos(view, seed, fault), (
        f'corpus scenario ({view}, {seed}, {fault}) no longer '
        f'injects its fault — re-pin a live scenario')
