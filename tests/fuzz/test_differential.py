"""The differential oracle: every execution mode commits bit-identical
state, or raises the same error, on randomized workloads.

Configurations compared (see ``strategies.build_engines``): memory vs
SQLite storage, batched vs statement-at-a-time translation, sharded
(3 mixed-backend shards) vs single engine, thread-pooled parallel vs
serial sharded execution, process-per-shard workers
(``execution='processes'``) vs everything in-process, and a WAL-fed
read replica (reads served from delta shipping, never from plan
re-execution) vs direct execution.  After every transaction the
committed base tables, the materialised view caches, and the
raised-error behavior must agree across all of them; at workload end
the replica's log is additionally replayed into a fresh engine (crash
recovery) which must land on the same state.

Profiles: CI runs the bounded smoke (``--hypothesis-profile=ci``);
``REPRO_FUZZ=long`` selects the deep profile locally (≥200 generated
transactions against the sharded engine).  A pinned seed corpus runs
under every profile via ``@example``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip('hypothesis')
from hypothesis import example, given, settings, strategies as st  # noqa: E402

from repro.errors import ReproError                                # noqa: E402

from .strategies import (FUZZ_VIEWS, Workload, build_engines,      # noqa: E402
                         random_workload)

#: Pinned reproductions that stay in every profile (the seed corpus).
#: 23709 once produced a flow-delete → transiently-violating-insert →
#: repair sequence the generator must no longer emit.
SEED_CORPUS = [('luxuryitems', 7), ('luxuryitems', 1031),
               ('officeinfo', 3), ('officeinfo', 512),
               ('outstanding_task', 11), ('outstanding_task', 4097),
               ('outstanding_task', 23709),
               ('vw_brands', 23), ('vw_brands', 2048)]


def run_differential(workload: Workload, *, extended: bool = False,
                     reference: str = 'memory-batched',
                     keep_engines: bool = False) -> dict:
    """Execute the workload on every configuration, asserting identical
    outcomes after each transaction.  Engines are closed on the way out
    (they hold thread pools and SQLite connections); pass
    ``keep_engines`` for extra assertions on live engines — the caller
    then owns the close."""
    engines = build_engines(workload, extended=extended)
    view = workload.view
    try:
        for number, transaction in enumerate(workload.transactions):
            outcomes: dict[str, str | None] = {}
            for name, engine in engines.items():
                try:
                    engine.execute_many(transaction)
                    outcomes[name] = None
                except ReproError as error:
                    outcomes[name] = type(error).__name__
            assert len(set(outcomes.values())) == 1, (
                f'divergent raise behavior on {workload!r} '
                f'transaction #{number}: {outcomes}')
            reference_state = (engines[reference].database(),
                               frozenset(engines[reference].rows(view)))
            for name, engine in engines.items():
                state = (engine.database(),
                         frozenset(engine.rows(view)))
                assert state == reference_state, (
                    f'{name} diverged from {reference} on {workload!r} '
                    f'transaction #{number} (outcome {outcomes[name]})')
        # Crash recovery: replaying the replica axis's WAL into a
        # fresh engine (what a post-SIGKILL restart does) must land on
        # the reference state too.
        if 'replica' in engines:
            final_state = (engines[reference].database(),
                           frozenset(engines[reference].rows(view)))
            assert engines['replica'].recovered_state(view) \
                == final_state, (
                f'WAL replay recovery diverged from {reference} '
                f'on {workload!r}')
    finally:
        if not keep_engines:
            for engine in engines.values():
                engine.close()
    return engines


@given(view=st.sampled_from(FUZZ_VIEWS),
       seed=st.integers(min_value=0, max_value=2 ** 20))
@example(view='luxuryitems', seed=7)
@example(view='officeinfo', seed=512)
@example(view='outstanding_task', seed=11)
@example(view='outstanding_task', seed=23709)
@example(view='vw_brands', seed=23)
@settings(deadline=None)
def test_all_modes_agree(view, seed):
    """The core matrix: memory/SQLite × batched/stmt × sharded/single
    × parallel/serial × threads/processes leave identical committed
    base tables and view caches, and raise identically, on every
    generated transaction sequence."""
    run_differential(random_workload(view, seed))


@given(view=st.sampled_from(FUZZ_VIEWS),
       seed=st.integers(min_value=2 ** 20, max_value=2 ** 21))
@example(view='luxuryitems', seed=1031)
@example(view='outstanding_task', seed=4097)
@settings(deadline=None)
def test_extended_matrix_agrees(view, seed):
    """The completed cross (adds sqlite-stmt and sharded-stmt)."""
    run_differential(random_workload(view, seed), extended=True)


@pytest.mark.parametrize('view,seed', SEED_CORPUS)
def test_seed_corpus_deterministic(view, seed):
    """The pinned corpus replays identically outside Hypothesis (a
    plain pytest run reproduces any corpus regression directly)."""
    workload = random_workload(view, seed)
    again = random_workload(view, seed)
    assert workload.transactions == again.transactions
    assert {n: set(workload.data[n]) for n in workload.data.names()} \
        == {n: set(again.data[n]) for n in again.data.names()}
    engines = run_differential(workload, keep_engines=True)
    try:
        # Sharded placement really was shard-local — the partitioned
        # paths (routing, scatter-gather, fan-back) were exercised, not
        # the global-fallback degenerate case — and the parallel engine
        # agreed while actually running with a pool.
        assert engines['sharded-batched'].placement(view) \
            == 'partitioned'
        assert engines['sharded-parallel'].parallelism == 2
        # The process-backed engine really ran with worker processes
        # (and shard-local placement), not a degenerate fallback.
        assert engines['sharded-procs'].execution == 'processes'
        assert engines['sharded-procs'].placement(view) == 'partitioned'
        assert all(shard.alive
                   for shard in engines['sharded-procs'].shards)
        # The replica axis really replicated: its reads were served at
        # the primary's commit point, through delta application alone.
        replicated = engines['replica']
        assert replicated.replica.applied_lsn \
            == replicated.primary.commit_lsn
        assert replicated.primary.commit_lsn > 0
    finally:
        for engine in engines.values():
            engine.close()


def test_violating_workloads_raise_everywhere():
    """At least one corpus workload exercises the constraint path, and
    a violating insert leaves every configuration untouched."""
    workload = random_workload('luxuryitems', 7)
    found = False
    for seed in range(60):
        candidate = random_workload('luxuryitems', seed)
        if candidate.expects_violations:
            workload, found = candidate, True
            break
    assert found, 'no violating workload in the first 60 seeds'
    run_differential(workload)
