"""Workload generation for the differential fuzz harness.

A :class:`Workload` is random base-table contents plus a random
multi-statement transaction sequence against one of the Figure-6
catalog views, fully determined by ``(view, seed)`` — so Hypothesis
shrinks over the seed, the CI smoke pins a seed corpus with
``@example``, and any failure reproduces from the two values in its
repr.  Base data comes from :mod:`repro.relational.generators` (the
paper's §6.2.2 protocol); statements mix

* template-valid view INSERTs (fresh rows satisfying the entry's
  ⊥-constraints),
* DELETEs by full row, by shard key, by WHERE-mapping, or everything,
* UPDATEs of constraint-neutral columns, and UPDATEs *of the shard
  key* (rows change owner under the sharded engine),
* direct base-table DML mixed into the same transaction,
* deliberately constraint-violating single-statement transactions, so
  the raise behavior is differentially checked too.

Batched translation checks constraints against the transaction's *net*
effect (deferred semantics) while statement-at-a-time checks every
intermediate state, so a transiently-violating-then-repaired
multi-statement transaction may legitimately diverge between the two
modes — that difference is by design (PR 3), not a bug the oracle
should flag.  The generator therefore keeps every statement it emits
valid at its position: violating inserts are always transaction-final
(nothing after them can repair), and for the inclusion-constrained
entry (``outstanding_task``) view inserts and key moves draw only from
the *live* ``flow`` tid pool — maintained through generated base-table
DML — while ``flow``-deleting base buckets are themselves deferred to
transaction-final position so no later statement can transiently
violate against the shrunk pool.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.benchsuite.catalog import entry_by_name
from repro.rdbms.dml import Delete, Insert, Statement, Update
from repro.rdbms.engine import Engine
from repro.rdbms.replica import ReplicaEngine
from repro.rdbms.sharded import ShardedEngine
from repro.relational.generators import random_database, random_rows

__all__ = ['FUZZ_VIEWS', 'SHARD_KEYS', 'Workload', 'random_workload',
           'build_engines', 'SHARD_BACKENDS']

#: The Figure-6 catalog views the harness fuzzes (one selection, one
#: projection, one projection+join with ID+C constraints, one union).
FUZZ_VIEWS = ('luxuryitems', 'officeinfo', 'outstanding_task',
              'vw_brands')

#: Co-partitioned shard-key declarations per view (every relation a
#: putback can reach shares the view's key attribute, so all four are
#: shard-local under ShardedEngine placement).
SHARD_KEYS = {
    'luxuryitems': {'luxuryitems': 'iid', 'items': 'iid'},
    'officeinfo': {'officeinfo': 'wname', 'works': 'wname'},
    'outstanding_task': {'outstanding_task': 'tid', 'tasks': 'tid',
                         'flow': 'tid'},
    'vw_brands': {'vw_brands': 'bid', 'brands_domestic': 'bid',
                  'brands_imported': 'bid'},
}

#: Mixed per-shard storage for the sharded configurations: hot shards
#: in memory, one cold shard on SQLite.
SHARD_BACKENDS = ('memory', 'sqlite', 'memory')

#: A view column whose value never participates in a ⊥-constraint —
#: safe to UPDATE mid-transaction without transient violations.
_SAFE_COLUMN = {'luxuryitems': 'iname', 'officeinfo': 'office',
                'outstanding_task': 'title', 'vw_brands': 'bname'}

_KEY_COLUMN = {'luxuryitems': 'iid', 'officeinfo': 'wname',
               'outstanding_task': 'tid', 'vw_brands': 'bid'}

#: Which base relation's first column supplies "existing key" draws.
_KEY_SOURCE = {'luxuryitems': 'items', 'officeinfo': 'works',
               'outstanding_task': 'tasks', 'vw_brands':
               'brands_domestic'}

_HAS_CONSTRAINTS = {'luxuryitems': True, 'officeinfo': False,
                    'outstanding_task': True, 'vw_brands': True}

_FRESH_BASE = 5_000_000


@dataclass
class Workload:
    """One differential-fuzz scenario, reproducible from its repr."""

    view: str
    seed: int
    data: object = field(repr=False)            # relational Database
    transactions: list = field(repr=False)      # [[(target, [stmt])]]
    expects_violations: bool = field(repr=False, default=False)


class _FlowPool:
    """The *live* ``flow`` tid pool for ``outstanding_task``: a view
    insert (or key move) is only constraint-valid when its tid has at
    least one surviving ``flow`` row, so the generator updates this
    pool through every base-table statement it emits."""

    def __init__(self, data):
        self.counts: dict = {}
        for tid, _step in data['flow']:
            self.counts[tid] = self.counts.get(tid, 0) + 1

    def live(self) -> list:
        return sorted(t for t, count in self.counts.items() if count > 0)

    def insert(self, row) -> None:
        self.counts[row[0]] = self.counts.get(row[0], 0) + 1

    def delete(self, row) -> None:
        if self.counts.get(row[0], 0) > 0:
            self.counts[row[0]] -= 1


def _fresh_view_row(view: str, flow_pool, index: int,
                    rng: random.Random) -> tuple | None:
    """A view tuple that is insertable under the entry's constraints,
    or ``None`` when no valid tuple exists (empty flow pool)."""
    if view == 'luxuryitems':
        return (_FRESH_BASE + index, f'item{index}',
                1001 + rng.randrange(5000))
    if view == 'officeinfo':
        return (f'fuzz_{index}', f'office_{rng.randrange(6)}')
    if view == 'outstanding_task':
        live = flow_pool.live()
        if not live:
            return None
        return (rng.choice(live), f'task{index}',
                f'owner{rng.randrange(4)}', rng.randrange(4))
    if view == 'vw_brands':
        return (_FRESH_BASE + index, f'brand{index}',
                rng.choice(['domestic', 'imported']))
    raise KeyError(view)


def _violating_view_row(view: str, flow_pool, index: int,
                        rng: random.Random) -> tuple:
    """A view tuple whose insertion must raise ConstraintViolation."""
    if view == 'luxuryitems':
        return (_FRESH_BASE + index, 'cheap', rng.randrange(1000))
    if view == 'outstanding_task':
        live = flow_pool.live()
        if rng.random() < 0.5 or not live:
            # tid outside the flow table: the ID constraint fires.
            return (77_000_000 + index, 'ghost', 'nobody', 1)
        return (rng.choice(live), 'neg', 'owner', -1)
    if view == 'vw_brands':
        return (_FRESH_BASE + index, 'brand', 'neither')
    raise KeyError(view)


def _fresh_key(view: str, index: int):
    if view == 'officeinfo':
        return f'fuzz_{index}'
    return _FRESH_BASE + index


def _existing_key(view: str, data, rng: random.Random):
    rows = sorted(data[_KEY_SOURCE[view]])
    return rng.choice(rows)[0] if rows else _fresh_key(view, 0)


def random_workload(view: str, seed: int) -> Workload:
    """The deterministic scenario for ``(view, seed)``."""
    entry = entry_by_name(view)
    rng = random.Random((seed << 3) ^ 0x5EED)
    scale = rng.randint(10, 60)
    data = random_database(entry.sources, entry.sizes(scale),
                           seed=rng.randrange(2 ** 30),
                           column_pools=entry.column_pools)
    view_attrs = _view_attributes(view)
    key_col = _KEY_COLUMN[view]
    safe_col = _SAFE_COLUMN[view]
    counter = iter(range(seed % 997, 10_000_000, 1))
    inserted: list[tuple] = []
    flow_pool = _FlowPool(data) if view == 'outstanding_task' else None
    expects_violations = False

    def view_statement() -> Statement:
        nonlocal inserted
        roll = rng.random()
        if roll < 0.40:
            row = _fresh_view_row(view, flow_pool, next(counter), rng)
            if row is None:               # empty flow pool: no valid
                return Delete(None)       # insert exists — clear instead
            inserted.append(row)
            return Insert(row)
        if roll < 0.65:   # DELETE
            sub = rng.random()
            if sub < 0.45 and inserted:
                return Delete(dict(zip(view_attrs, rng.choice(inserted))))
            if sub < 0.75:
                return Delete({key_col: _existing_key(view, data, rng)})
            if sub < 0.95:
                return Delete({key_col: _fresh_key(view, next(counter))})
            return Delete(None)
        if roll < 0.85:   # UPDATE of a constraint-neutral column
            assignment = {safe_col: f'renamed_{next(counter)}'}
            sub = rng.random()
            if sub < 0.5 and inserted:
                return Update(assignment,
                              dict(zip(view_attrs, rng.choice(inserted))))
            if sub < 0.9:
                return Update(assignment,
                              {key_col: _existing_key(view, data, rng)})
            return Update(assignment, None)
        # UPDATE of the shard key: rows change owner when sharded.
        if view == 'outstanding_task':
            live = flow_pool.live()
            if not live:                  # no valid target key exists
                return Update({safe_col: f'renamed_{next(counter)}'},
                              None)
            new_key = rng.choice(live)    # stays in flow
        else:
            new_key = _fresh_key(view, next(counter))
        where = {key_col: _existing_key(view, data, rng)} \
            if rng.random() < 0.8 or not inserted \
            else dict(zip(view_attrs, rng.choice(inserted)))
        return Update({key_col: new_key}, where)

    def base_bucket() -> tuple[str, list[Statement]] | None:
        """A direct base-table bucket, or ``None`` when the draw is a
        ``flow`` delete (those are returned via ``flow_tail`` and run
        transaction-final, so no later view statement can transiently
        violate against the shrunk inclusion pool)."""
        name = rng.choice(entry.sources.names())
        schema = entry.sources[name]
        if rng.random() < 0.6:
            pools = (entry.column_pools or {}).get(name)
            row = next(iter(random_rows(schema, 1, rng, pools)))
            if flow_pool is not None and name == 'flow':
                flow_pool.insert(row)
            return (name, [Insert(row)])
        rows = sorted(data[name])
        if not rows:
            return (name, [Delete({schema.attributes[0]:
                                   _fresh_key(view, next(counter))})])
        victim = rng.choice(rows)
        bucket = (name, [Delete(dict(zip(schema.attributes, victim)))])
        if flow_pool is not None and name == 'flow':
            flow_pool.delete(victim)
            flow_tail.append(bucket)
            return None
        return bucket

    transactions: list = []
    for _ in range(rng.randint(1, 4)):
        violating = _HAS_CONSTRAINTS[view] and rng.random() < 0.22
        # A violating transaction ABORTS: none of its base-table writes
        # commit, so its pool mutations must not leak into the
        # validity reasoning of later transactions.
        pool_snapshot = dict(flow_pool.counts) if violating \
            and flow_pool is not None else None
        buckets: list = []
        flow_tail: list = []
        if not violating or rng.random() < 0.5:
            for _bucket in range(rng.randint(1, 3)):
                if rng.random() < 0.2:
                    bucket = base_bucket()
                    if bucket is not None:
                        buckets.append(bucket)
                else:
                    statements = [view_statement()
                                  for _ in range(rng.randint(1, 4))]
                    buckets.append((view, statements))
        if violating:
            # The violating insert is always the FINAL statement: a
            # fresh row nothing earlier can repair, so deferred
            # (batched) and immediate (stmt) constraint semantics
            # agree that the transaction dies — while any clean
            # buckets before it exercise the multi-shard abort.
            row = _violating_view_row(view, flow_pool, next(counter),
                                      rng)
            buckets.append((view, [Insert(row)]))
            expects_violations = True
            if pool_snapshot is not None:
                flow_pool.counts = pool_snapshot
        else:
            buckets.extend(flow_tail)
        transactions.append(buckets)
    return Workload(view=view, seed=seed, data=data,
                    transactions=transactions,
                    expects_violations=expects_violations)


def _view_attributes(view: str) -> tuple[str, ...]:
    return _strategy(view).view.attributes


_STRATEGIES: dict = {}


def _strategy(view: str):
    if view not in _STRATEGIES:
        _STRATEGIES[view] = entry_by_name(view).strategy()
    return _STRATEGIES[view]


class _ReplicatedEngine:
    """A WAL-backed primary plus one delta-fed replica, presented to
    the oracle as a single engine: writes run on the primary, every
    read catches the replica up and serves from *it* — so the standing
    per-transaction state comparison IS the bit-identity assertion for
    delta shipping.  :meth:`recovered_state` additionally replays the
    log into a fresh engine (crash recovery), which
    ``run_differential`` checks against the reference at workload end.
    """

    def __init__(self, strategy):
        self._strategy = strategy
        self._tmp = tempfile.TemporaryDirectory(prefix='repro-fuzz-wal-')
        self._path = Path(self._tmp.name) / 'primary.wal'
        self.primary = Engine(strategy.sources, wal=self._path,
                              wal_sync=False)
        self.replica = ReplicaEngine(strategy.sources, self.primary.wal)

    def load(self, name, rows):
        self.primary.load(name, rows)

    def define_view(self, strategy, **kwargs):
        return self.primary.define_view(strategy, **kwargs)

    def execute_many(self, batches):
        return self.primary.execute_many(batches)

    def rows(self, name):
        self.replica.catch_up()
        return self.replica.rows(name)

    def database(self):
        self.replica.catch_up()
        return self.replica.database()

    def recovered_state(self, view):
        """Crash-replay the log into a fresh engine and report its
        ``(database, view rows)`` — what a restart would serve."""
        recovered = Engine(self._strategy.sources, wal=self._path,
                           wal_sync=False)
        try:
            return (recovered.database(),
                    frozenset(recovered.rows(view)))
        finally:
            recovered.close()

    def close(self):
        self.replica.close()
        self.primary.close()
        self._tmp.cleanup()


def build_engines(workload: Workload, *,
                  extended: bool = False) -> dict[str, object]:
    """The differential configuration matrix, loaded with the
    workload's base data and the view materialised.

    The core matrix covers memory-vs-SQLite × batched-vs-stmt ×
    sharded-vs-single × parallel-vs-serial × threads-vs-processes ×
    replicated-vs-direct with seven entries (one per axis endpoint —
    ``sharded-parallel`` drives the same mixed-backend shards through
    the thread pool, ``sharded-procs`` through worker *processes*,
    ``replica`` serves every read from a WAL-fed
    :class:`_ReplicatedEngine` replica); ``extended`` completes the
    cross with the remaining costly combinations for the deep
    (``REPRO_FUZZ=long``) runs.
    """
    strategy = _strategy(workload.view)
    configs: dict[str, object] = {}

    def single(backend: str, batch: bool) -> Engine:
        return Engine(strategy.sources, backend=backend,
                      batch_deltas=batch)

    def sharded(batch: bool, parallelism: int = 1) -> ShardedEngine:
        return ShardedEngine(strategy.sources,
                             backends=list(SHARD_BACKENDS),
                             shard_keys=SHARD_KEYS[workload.view],
                             batch_deltas=batch,
                             parallelism=parallelism)

    def procs(batch: bool) -> ShardedEngine:
        return ShardedEngine(strategy.sources,
                             backends=list(SHARD_BACKENDS),
                             shard_keys=SHARD_KEYS[workload.view],
                             batch_deltas=batch,
                             execution='processes')

    # Process-backed engines fork FIRST, before any other config has
    # lazily created thread pools or SQLite connections the child
    # would pointlessly inherit.
    configs['sharded-procs'] = procs(True)
    if extended:
        configs['sharded-procs-stmt'] = procs(False)
    configs['memory-batched'] = single('memory', True)
    configs['replica'] = _ReplicatedEngine(strategy)
    configs['memory-stmt'] = single('memory', False)
    configs['sqlite-batched'] = single('sqlite', True)
    configs['sharded-batched'] = sharded(True)
    configs['sharded-parallel'] = sharded(True, parallelism=2)
    if extended:
        configs['sqlite-stmt'] = single('sqlite', False)
        configs['sharded-stmt'] = sharded(False)
        configs['sharded-parallel-stmt'] = sharded(False, parallelism=3)

    for engine in configs.values():
        for name in strategy.sources.names():
            engine.load(name, workload.data[name])
        engine.define_view(strategy, validate_first=False)
        engine.rows(workload.view)      # materialise the view cache
    return configs
