"""View-operator and constraint-kind classification tests, cross-checked
against the paper's Table 1 labels on the catalog."""

import pytest

from repro.benchsuite.catalog import ALL_ENTRIES, entry_by_name
from repro.benchsuite.classify import constraint_kinds, view_operators
from repro.datalog.parser import parse_program


class TestViewOperators:

    def test_selection(self):
        program = parse_program('v(X, P) :- r(X, P), P > 10.')
        assert view_operators(program, 'v') == 'S'

    def test_projection_via_anonymous(self):
        program = parse_program('v(X) :- r(X, _).')
        assert 'P' in view_operators(program, 'v')

    def test_projection_via_dropped_variable(self):
        program = parse_program('v(X) :- r(X, Y).')
        assert 'P' in view_operators(program, 'v')

    def test_union(self):
        program = parse_program('v(X) :- r1(X).\nv(X) :- r2(X).')
        assert 'U' in view_operators(program, 'v')

    def test_difference(self):
        program = parse_program('v(X) :- r1(X), not r2(X).')
        assert 'D' in view_operators(program, 'v')

    def test_inner_join(self):
        program = parse_program('v(X, Y, Z) :- r(X, Y), s(Y, Z).')
        ops = view_operators(program, 'v')
        assert 'IJ' in ops

    def test_semijoin(self):
        program = parse_program('v(X, Y) :- r(X, Y), s(X, _).')
        ops = view_operators(program, 'v')
        assert 'SJ' in ops and 'IJ' not in ops

    def test_left_join_encoding(self):
        program = parse_program("""
            v(P, N, Q) :- names(P, N), stock(P, Q).
            v(P, N, Q) :- names(P, N), not stock(P, _), Q = -1.
        """)
        assert 'LJ' in view_operators(program, 'v')

    @pytest.mark.parametrize('name,expect_subset', [
        ('luxuryitems', {'S'}),
        ('officeinfo', {'P'}),
        ('residents', {'U'}),
        ('ced', {'D'}),
        ('employees', {'SJ'}),
        ('tracks1', {'IJ'}),
        ('products', {'LJ'}),
        ('vw_brands', {'U'}),
    ])
    def test_catalog_agreement(self, name, expect_subset):
        entry = entry_by_name(name)
        strategy = entry.strategy()
        ops = set(view_operators(strategy.expected_get, name,
                                 set(strategy.sources.names())).split(','))
        assert expect_subset <= ops, (name, ops)


class TestConstraintKinds:

    def test_domain_constraint(self):
        program = parse_program('⊥ :- v(X, P), P < 0.')
        assert constraint_kinds(program, 'v') == 'C'

    def test_functional_dependency_is_pk(self):
        program = parse_program(
            '⊥ :- v(A, B1), v(A, B2), not B1 = B2.')
        assert constraint_kinds(program, 'v') == 'PK'

    def test_inclusion_dependency(self):
        program = parse_program('⊥ :- v(E, B), not ced(E, _).')
        assert constraint_kinds(program, 'v') == 'ID'

    def test_source_fk(self):
        program = parse_program('⊥ :- stock(P, Q), not names(P, _).')
        assert constraint_kinds(program, 'v') == 'FK'

    def test_mixed_kinds_ordered(self):
        program = parse_program("""
            ⊥ :- v(A, B1), v(A, B2), not B1 = B2.
            ⊥ :- v(A, B), B < 0.
        """)
        assert constraint_kinds(program, 'v') == 'PK, C'

    def test_no_constraints(self):
        program = parse_program('+r(X) :- v(X).')
        assert constraint_kinds(program, 'v') == ''

    @pytest.mark.parametrize('name,expected_kinds', [
        ('luxuryitems', {'C'}),
        ('employees', {'ID'}),
        ('tracks1', {'PK'}),
        ('outstanding_task', {'ID', 'C'}),
    ])
    def test_catalog_agreement(self, name, expected_kinds):
        entry = entry_by_name(name)
        strategy = entry.strategy()
        kinds = set(constraint_kinds(
            strategy.putdelta, name,
            set(strategy.sources.names())).split(', '))
        assert expected_kinds <= kinds, (name, kinds)
