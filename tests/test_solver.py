"""Bounded satisfiability solver tests (the Z3 substitute, §4)."""

import pytest

from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.fol.solver import (Clause, SatStatus, SolverConfig,
                              check_satisfiable, unfold_to_clauses)
from repro.relational.schema import DatabaseSchema

FAST = SolverConfig(random_trials=40)


def sat(text, goal='q', **kwargs):
    return check_satisfiable(parse_program(text), goal,
                             config=kwargs.pop('config', FAST), **kwargs)


class TestBasicSatisfiability:

    def test_single_atom_sat(self):
        assert sat('q(X) :- r(X).').is_sat

    def test_contradiction_unsat(self):
        assert not sat('q(X) :- r(X), not r(X).').is_sat

    def test_join_sat(self):
        assert sat('q(X) :- r(X, Y), s(Y, X).').is_sat

    def test_disjoint_negation_sat(self):
        assert sat('q(X) :- r(X), not s(X).').is_sat

    def test_witness_is_verified(self):
        result = sat('q(X) :- r(X), not s(X).')
        program = parse_program('q(X) :- r(X), not s(X).')
        assert evaluate(program, result.witness)['q']

    def test_empty_definition_unsat(self):
        # No rule for the goal at all.
        program = parse_program('other(X) :- r(X).')
        result = check_satisfiable(program, 'q', config=FAST)
        assert not result.is_sat


class TestEqualityReasoning:

    def test_equality_chain_sat(self):
        assert sat("q(X) :- r(X), X = 'a'.").is_sat

    def test_conflicting_constants_unsat(self):
        assert not sat("q(X) :- r(X), X = 'a', X = 'b'.").is_sat

    def test_disequality_needs_two_values(self):
        assert sat('q(X, Y) :- r(X), r(Y), not X = Y.').is_sat

    def test_unsatisfiable_disequality(self):
        assert not sat("q(X) :- r(X), X = 'a', not X = 'a'.").is_sat

    def test_variable_merge_through_equality(self):
        assert sat('q(X, Y) :- r(X), s(Y), X = Y.').is_sat


class TestComparisons:

    def test_open_interval_sat(self):
        result = sat('q(X) :- r(X), X > 5, X < 10.')
        assert result.is_sat
        value = next(iter(result.witness['r']))[0]
        assert 5 < value < 10

    def test_empty_interval_unsat(self):
        assert not sat('q(X) :- r(X), X > 10, X < 5.').is_sat

    def test_adjacent_ints_unsat(self):
        assert not sat('q(X) :- r(X), X > 5, X < 6.').is_sat

    def test_loose_bounds_allow_equality(self):
        result = sat('q(X) :- r(X), X >= 5, X <= 5.')
        assert result.is_sat
        assert next(iter(result.witness['r']))[0] == 5

    def test_string_interval(self):
        result = sat("q(X) :- r(X), X > '1962-01-01', X < '1962-12-31'.")
        assert result.is_sat

    def test_var_var_comparison(self):
        assert sat('q(X, Y) :- r(X, Y), X < Y.').is_sat

    def test_var_var_comparison_contradiction(self):
        assert not sat('q(X, Y) :- r(X, Y), X < Y, Y < X.').is_sat


class TestUnderConstraints:

    def test_constraint_blocks_witness(self):
        text = """
            q(X) :- r(X), X > 5.
            ⊥ :- r(X), X > 3.
        """
        assert not sat(text).is_sat

    def test_constraint_leaves_room(self):
        text = """
            q(X) :- r(X), X > 5.
            ⊥ :- r(X), X > 100.
        """
        assert sat(text).is_sat

    def test_constraints_via_keyword(self):
        program = parse_program('q(X) :- r(X).')
        constraints = parse_program('⊥ :- r(X).')
        result = check_satisfiable(program, 'q', constraints=constraints,
                                   config=FAST)
        assert not result.is_sat

    def test_functional_dependency_constraint(self):
        # Witness must satisfy the FD; two rows needed but FD forbids.
        text = """
            q(A) :- v(A, B1), v(A, B2), not B1 = B2.
            ⊥ :- v(A, B1), v(A, B2), not B1 = B2.
        """
        assert not sat(text).is_sat


class TestUnfolding:

    def test_idb_expansion(self):
        program = parse_program("""
            mid(X) :- r(X), X > 1.
            q(X) :- mid(X), s(X).
        """)
        clauses = unfold_to_clauses(program, 'q')
        assert len(clauses) == 1
        preds = {a.pred for a in clauses[0].pos_atoms}
        assert preds == {'r', 's'}

    def test_union_expansion(self):
        program = parse_program("""
            mid(X) :- r1(X).
            mid(X) :- r2(X).
            q(X) :- mid(X).
        """)
        assert len(unfold_to_clauses(program, 'q')) == 2

    def test_negated_idb_kept_as_check(self):
        program = parse_program("""
            mid(X) :- r(X).
            q(X) :- s(X), not mid(X).
        """)
        clauses = unfold_to_clauses(program, 'q')
        assert clauses[0].neg_atoms[0].pred == 'mid'

    def test_clause_cap(self):
        program = parse_program("""
            mid(X) :- r1(X).
            mid(X) :- r2(X).
            q(X) :- mid(X), mid(X).
        """)
        assert len(unfold_to_clauses(program, 'q', max_clauses=3)) == 3

    def test_through_idb_with_schema_types(self):
        schema = DatabaseSchema.build(r={'a': 'int'})
        result = check_satisfiable(
            parse_program('q(X) :- r(X), X > 5.'), 'q', schema=schema,
            config=FAST)
        assert result.is_sat
        value = next(iter(result.witness['r']))[0]
        assert isinstance(value, int)


class TestGetPutStyleChecks:

    def test_union_strategy_delta_conditions(self):
        # With v = r1 ∪ r2 the effective deltas must be unsatisfiable —
        # exactly the GetPut reduction of §4.3.
        text = """
            v(X) :- r1(X).
            v(X) :- r2(X).
            -r1(X) :- r1(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            q(X) :- -r1(X), r1(X).
        """
        assert not sat(text).is_sat

    def test_wrong_get_makes_delta_satisfiable(self):
        text = """
            v(X) :- r1(X).
            -r2(X) :- r2(X), not v(X).
            q(X) :- -r2(X), r2(X).
        """
        assert sat(text).is_sat
