"""UpdateStrategy tests: construction checks and put semantics (§3.1)."""

import pytest

from repro.core.strategy import UpdateStrategy
from repro.errors import (ConstraintViolation, ContradictionError,
                          SchemaError, ViewUpdateError)
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema


class TestConstruction:

    def test_view_schema_inferred(self, union_strategy):
        assert union_strategy.view.arity == 1
        assert union_strategy.view.types == ('int',)

    def test_view_type_inference_through_get(self, luxury_strategy):
        assert luxury_strategy.view.types == ('int', 'string', 'int')

    def test_view_must_occur(self, union_sources):
        with pytest.raises(SchemaError):
            UpdateStrategy.parse('ghost', union_sources,
                                 '+r1(X) :- r1(X).')

    def test_view_must_not_be_defined(self, union_sources):
        with pytest.raises(SchemaError):
            UpdateStrategy.parse('v', union_sources, """
                v(X) :- r1(X).
                +r1(X) :- v(X).
            """)

    def test_delta_on_view_rejected(self, union_sources):
        with pytest.raises(SchemaError):
            UpdateStrategy.parse('v', union_sources,
                                 '+v(X) :- r1(X), not v(X).')

    def test_source_redefinition_rejected(self, union_sources):
        with pytest.raises(SchemaError):
            UpdateStrategy.parse('v', union_sources, """
                r1(X) :- r2(X).
                +r2(X) :- v(X).
            """)

    def test_delta_arity_mismatch(self, union_sources):
        with pytest.raises(SchemaError):
            UpdateStrategy.parse('v', union_sources,
                                 '+r1(X, Y) :- v(X), v(Y).')

    def test_unsafe_rule_rejected(self, union_sources):
        from repro.errors import SafetyError
        with pytest.raises(SafetyError):
            UpdateStrategy.parse('v', union_sources,
                                 '+r1(X) :- v(Y), not r1(X).')

    def test_recursive_program_rejected(self, union_sources):
        from repro.errors import RecursionError_
        with pytest.raises(RecursionError_):
            UpdateStrategy.parse('v', union_sources, """
                aux(X) :- aux(X).
                +r1(X) :- v(X), aux(X).
            """)

    def test_expected_get_must_define_view(self, union_sources):
        with pytest.raises(SchemaError):
            UpdateStrategy.parse('v', union_sources,
                                 '+r1(X) :- v(X), not r1(X).',
                                 expected_get='w(X) :- r1(X).')

    def test_explicit_view_schema(self, union_sources):
        view = RelationSchema('v', ('value',), ('int',))
        strategy = UpdateStrategy(view, union_sources,
                                  putdelta=__import__(
                                      'repro.datalog.parser',
                                      fromlist=['parse_program']
                                  ).parse_program(
                                      '+r1(X) :- v(X), not r1(X).'))
        assert strategy.view.attributes == ('value',)


class TestIntrospection:

    def test_delta_preds(self, union_strategy):
        assert union_strategy.delta_preds() == {'-r1', '-r2', '+r1'}

    def test_updated_relations(self, union_strategy):
        assert union_strategy.updated_relations() == {'r1', 'r2'}

    def test_rule_partitions(self, luxury_strategy):
        assert len(luxury_strategy.constraints()) == 1
        assert len(luxury_strategy.delta_rules()) == 2
        assert len(luxury_strategy.intermediate_rules()) == 1
        assert luxury_strategy.program_size() == 4


class TestPutSemantics:

    def test_example_3_1(self, union_strategy, union_database):
        view = {(1,), (3,), (4,)}
        updated = union_strategy.put(union_database, view)
        assert updated['r1'] == {(1,), (3,)}
        assert updated['r2'] == {(4,)}

    def test_getput_on_current_view(self, union_strategy, union_database):
        view = union_strategy.get(union_database)
        assert union_strategy.put(union_database, view) == union_database

    def test_compute_delta(self, union_strategy, union_database):
        deltas = union_strategy.compute_delta(union_database,
                                              {(1,), (3,), (4,)})
        assert deltas['r1'].insertions == {(3,)}
        assert deltas['r2'].deletions == {(2,)}

    def test_constraint_enforcement(self, luxury_strategy):
        source = Database.from_dict({'items': {(1, 'watch', 5000)}})
        with pytest.raises(ConstraintViolation):
            luxury_strategy.put(source, {(2, 'gum', 5)})

    def test_constraint_can_be_skipped(self, luxury_strategy):
        source = Database.from_dict({'items': {(1, 'watch', 5000)}})
        updated = luxury_strategy.put(source, {(2, 'gum', 5)},
                                      enforce_constraints=False)
        assert (2, 'gum', 5) in updated['items']

    def test_contradictory_strategy_raises_on_put(self, union_sources):
        strategy = UpdateStrategy.parse('v', union_sources, """
            +r1(X) :- v(X), r1(X).
            -r1(X) :- v(X), r1(X).
        """)
        source = Database.from_dict({'r1': {(1,)}})
        with pytest.raises(ContradictionError):
            strategy.put(source, {(1,)})

    def test_get_requires_expected(self, union_sources):
        strategy = UpdateStrategy.parse(
            'v', union_sources, '+r1(X) :- v(X), not r1(X).')
        with pytest.raises(ViewUpdateError):
            strategy.get(Database.empty())

    def test_view_rows_validated(self, luxury_strategy):
        source = Database.from_dict({'items': set()})
        with pytest.raises(SchemaError):
            luxury_strategy.put(source, {('not-an-int', 'x', 2000)})

    def test_case_study_ced(self, ced_strategy):
        source = Database.from_dict({
            'ed': {('alice', 'cs'), ('bob', 'math')},
            'eed': {('bob', 'math')}})
        # Current view: alice/cs.  Move bob back into math.
        updated = ced_strategy.put(source, {('alice', 'cs'),
                                            ('bob', 'math')})
        assert updated['eed'] == frozenset()
        # And retire alice's cs membership.
        updated2 = ced_strategy.put(source, set())
        assert ('alice', 'cs') in updated2['eed']
