"""Safety (range restriction) analysis tests."""

import pytest

from repro.datalog.parser import parse_rule
from repro.datalog.safety import (bound_variables, check_rule_safety,
                                  is_safe)
from repro.errors import SafetyError


class TestBoundVariables:

    def test_positive_atoms_bind(self):
        rule = parse_rule('h(X, Y) :- r(X), s(Y).')
        assert bound_variables(rule) == {'X', 'Y'}

    def test_equality_with_constant_binds(self):
        rule = parse_rule("h(X) :- X = 'a'.")
        assert bound_variables(rule) == {'X'}

    def test_equality_chain_binds(self):
        rule = parse_rule("h(Z) :- X = 1, Y = X, Z = Y.")
        assert bound_variables(rule) == {'X', 'Y', 'Z'}

    def test_negation_binds_nothing(self):
        rule = parse_rule('h(X) :- r(X), not s(X, Y).')
        assert 'Y' not in bound_variables(rule)

    def test_comparison_binds_nothing(self):
        rule = parse_rule('h(X) :- r(X), Y > 2.')
        assert 'Y' not in bound_variables(rule)


class TestSafetyCheck:

    def test_safe_rule(self):
        check_rule_safety(parse_rule('h(X) :- r(X), not s(X).'))

    def test_head_variable_unbound(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule('h(X, Y) :- r(X).'))

    def test_negated_variable_unbound(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule('h(X) :- r(X), not s(Y).'))

    def test_comparison_variable_unbound(self):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule('h(X) :- r(X), Y > 1.'))

    def test_negated_equality_needs_bound_vars(self):
        assert not is_safe(parse_rule('h(X) :- r(X), not X = Y.'))

    def test_anonymous_in_negated_atom_is_exempt(self):
        # The paper's retired strategy relies on `not ced(E, _)`.
        rule = parse_rule('h(E) :- r(E), not ced(E, _).')
        check_rule_safety(rule)

    def test_anonymous_in_positive_atom_is_plain_variable(self):
        check_rule_safety(parse_rule('h(X) :- r(X, _).'))

    def test_constraint_rule_safety(self):
        check_rule_safety(parse_rule('⊥ :- v(X), X > 2.'))

    def test_equality_to_constant_in_head(self):
        check_rule_safety(
            parse_rule("h(X, D) :- r(X), D = 'unknown'."))
