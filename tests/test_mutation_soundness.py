"""Mutation testing of the validator (soundness of the Z3 substitute).

The substitution argument in DESIGN.md rests on one empirical claim:
counterexamples to well-behavedness are small, so the bounded solver
finds them.  This suite takes *valid* catalog strategies, applies
systematic breaking mutations — dropped rules, flipped literal signs,
weakened guards, swapped constants — and requires the validator to flag
every mutant as invalid (with its expected get supplied, so the checks
target the intended view definition).
"""

import pytest

from repro.core.strategy import UpdateStrategy
from repro.core.validation import validate
from repro.fol.solver import SolverConfig
from repro.relational.schema import DatabaseSchema

FAST = SolverConfig(random_trials=60)


def _is_invalid(name, sources, putdelta, get):
    strategy = UpdateStrategy.parse(name, sources, putdelta,
                                    expected_get=get)
    report = validate(strategy, config=FAST,
                      derive_when_expected_fails=True)
    return not report.valid


UNION_SOURCES = DatabaseSchema.build(r1={'a': 'int'}, r2={'a': 'int'})
UNION_GET = 'v(X) :- r1(X).\nv(X) :- r2(X).'

UNION_MUTANTS = {
    'drop_insertion_rule': """
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
    """,
    'drop_one_deletion_rule': """
        -r1(X) :- r1(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    """,
    'flip_view_sign_in_deletion': """
        -r1(X) :- r1(X), v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    """,
    'insertion_misses_r2_guard': """
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X).
    """,
    'contradictory_insert_delete': """
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        +r2(X) :- r2(X), not v(X).
    """,
    'delete_wrong_relation': """
        -r1(X) :- r2(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    """,
}


@pytest.mark.parametrize('mutation', sorted(UNION_MUTANTS),
                         ids=lambda m: m)
def test_union_mutants_rejected(mutation):
    assert _is_invalid('v', UNION_SOURCES, UNION_MUTANTS[mutation],
                       UNION_GET), mutation


LUXURY_SOURCES = DatabaseSchema.build(
    items={'iid': 'int', 'iname': 'string', 'price': 'int'})
LUXURY_GET = "luxuryitems(I, N, P) :- items(I, N, P), P > 1000."

LUXURY_MUTANTS = {
    'missing_constraint_allows_cheap_inserts': """
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P),
            not luxuryitems(I, N, P).
    """,
    'deletion_ignores_selection': """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        -items(I, N, P) :- items(I, N, P), not luxuryitems(I, N, P).
    """,
    'selection_threshold_off_by_one': """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 999.
        -items(I, N, P) :- expensive(I, N, P),
            not luxuryitems(I, N, P).
    """,
}


@pytest.mark.parametrize('mutation', sorted(LUXURY_MUTANTS),
                         ids=lambda m: m)
def test_luxury_mutants_rejected(mutation):
    assert _is_invalid('luxuryitems', LUXURY_SOURCES,
                       LUXURY_MUTANTS[mutation], LUXURY_GET), mutation


CED_SOURCES = DatabaseSchema.build(ed=['emp', 'dept'], eed=['emp', 'dept'])
CED_GET = 'ced(E, D) :- ed(E, D), not eed(E, D).'

CED_MUTANTS = {
    'forgets_to_unretire': """
        +ed(E, D) :- ced(E, D), not ed(E, D).
        +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
    """,
    'retires_current_members': """
        +ed(E, D) :- ced(E, D), not ed(E, D).
        -eed(E, D) :- ced(E, D), eed(E, D).
        +eed(E, D) :- ed(E, D), ced(E, D), not eed(E, D).
    """,
    'deletes_history_instead_of_inserting': """
        +ed(E, D) :- ced(E, D), not ed(E, D).
        -eed(E, D) :- ced(E, D), eed(E, D).
        -ed(E, D) :- ed(E, D), not ced(E, D).
        +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
    """,
}


@pytest.mark.parametrize('mutation', sorted(CED_MUTANTS), ids=lambda m: m)
def test_ced_mutants_rejected(mutation):
    assert _is_invalid('ced', CED_SOURCES, CED_MUTANTS[mutation],
                       CED_GET), mutation


EMPLOYEES_SOURCES = DatabaseSchema.build(
    residents={'emp_name': 'string', 'birth_date': 'date',
               'gender': 'string'},
    ced={'emp_name': 'string', 'dept_name': 'string'})
EMPLOYEES_GET = "employees(E, B, G) :- residents(E, B, G), ced(E, _)."

EMPLOYEES_MUTANTS = {
    'drop_inclusion_constraint': """
        +residents(E, B, G) :- employees(E, B, G),
            not residents(E, B, G).
        -residents(E, B, G) :- residents(E, B, G), ced(E, _),
            not employees(E, B, G).
    """,
    'unguarded_deletion': """
        ⊥ :- employees(E, B, G), not ced(E, _).
        +residents(E, B, G) :- employees(E, B, G),
            not residents(E, B, G).
        -residents(E, B, G) :- residents(E, B, G),
            not employees(E, B, G).
    """,
}


@pytest.mark.parametrize('mutation', sorted(EMPLOYEES_MUTANTS),
                         ids=lambda m: m)
def test_employees_mutants_rejected(mutation):
    assert _is_invalid('employees', EMPLOYEES_SOURCES,
                       EMPLOYEES_MUTANTS[mutation], EMPLOYEES_GET), mutation


def test_originals_still_valid():
    """Sanity: the unmutated strategies all validate (so the rejections
    above measure the mutations, not the fixtures)."""
    from repro.benchsuite.catalog import entry_by_name
    for name in ('luxuryitems', 'ced', 'employees'):
        report = validate(entry_by_name(name).strategy(), config=FAST)
        assert report.valid, name
