"""Incrementalization tests (§5, Lemma 5.2, Appendix C).

The headline property: for a valid strategy in a steady state, the
incremental program produces the same updated source as the full putback
program, for arbitrary view deltas (Proposition 5.1).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import (binarize, incrementalize,
                                    incrementalize_general,
                                    incrementalize_lvgn)
from repro.core.strategy import UpdateStrategy
from repro.datalog.ast import delete_pred, insert_pred, is_delta_pred
from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.pretty import pretty
from repro.relational.database import Database
from repro.relational.delta import DeltaSet


def incremental_matches_full(strategy, get_text, source, delta_plus,
                             delta_minus, *, general=False):
    """Prop. 5.1: S ⊕ putdelta(S, V') == S ⊕ ∂put(S, V, ΔV)."""
    get_program = parse_program(get_text)
    view = strategy.view.name
    current = evaluate(get_program, source)[view]
    delta_plus = frozenset(delta_plus) - current
    delta_minus = frozenset(delta_minus) & current
    new_view = (current - delta_minus) | delta_plus

    full = strategy.put(source, new_view, enforce_constraints=False)

    if general:
        dput = incrementalize_general(strategy.putdelta, view)
    else:
        dput = incrementalize_lvgn(strategy.putdelta, view)
    edb = dict(source.relations)
    edb[view] = current
    edb[insert_pred(view)] = delta_plus
    edb[delete_pred(view)] = delta_minus
    out = evaluate(dput, edb)
    deltas = DeltaSet.from_database(out,
                                    relations=strategy.updated_relations())
    incremental = deltas.effective_on(source).apply_to(source)
    assert incremental == full, (pretty(dput), deltas)


class TestLvgnShortcut:

    def test_example_5_2_shape(self):
        # The paper's Example 5.2 derived program, up to rule order.
        putdelta = parse_program("""
            +r(X, Y) :- v(X, Y), not r(X, Y).
            m(X, Y) :- r(X, Y), Y > 2.
            -r(X, Y) :- m(X, Y), not v(X, Y).
        """)
        dput = incrementalize_lvgn(putdelta, 'v')
        text = pretty(dput)
        assert '+r(X, Y) :- +v(X, Y), not r(X, Y).' in text
        assert '-v(X, Y)' in text
        assert 'v(X, Y),' not in text.replace('+v', '').replace('-v', '')

    def test_view_free_delta_rules_dropped(self):
        putdelta = parse_program("""
            +r(X) :- v(X), not r(X).
            -s(X) :- s(X), t(X).
        """)
        dput = incrementalize_lvgn(putdelta, 'v')
        assert not dput.rules_for('-s')

    def test_constraints_substituted(self):
        putdelta = parse_program("""
            ⊥ :- v(X), X > 10.
            +r(X) :- v(X), not r(X).
        """)
        dput = incrementalize_lvgn(putdelta, 'v')
        (constraint,) = dput.constraints()
        assert constraint.body[0].atom.pred == '+v'

    def test_self_join_rejected(self):
        putdelta = parse_program('+r(X, Y) :- v(X, Y), v(Y, X).')
        from repro.errors import FragmentError
        with pytest.raises(FragmentError):
            incrementalize_lvgn(putdelta, 'v')

    def test_auto_dispatch(self, union_strategy):
        dput = incrementalize(union_strategy.putdelta, 'v')
        assert '+v' in {l.atom.pred for r in dput.proper_rules()
                        for l in r.body
                        if hasattr(l, 'atom')}


class TestLvgnEquivalence:

    def _union(self, union_strategy):
        return union_strategy, 'v(X) :- r1(X).\nv(X) :- r2(X).'

    @given(st.frozensets(st.tuples(st.integers(0, 5)), max_size=4),
           st.frozensets(st.tuples(st.integers(0, 5)), max_size=4),
           st.frozensets(st.tuples(st.integers(0, 5)), max_size=3),
           st.frozensets(st.tuples(st.integers(0, 5)), max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_union_equivalence(self, r1, r2, plus, minus):
        from tests.conftest import UNION_PUTDELTA, UNION_GET
        from repro.relational.schema import DatabaseSchema
        strategy = UpdateStrategy.parse(
            'v', DatabaseSchema.build(r1={'a': 'int'}, r2={'a': 'int'}),
            UNION_PUTDELTA)
        source = Database.from_dict({'r1': r1, 'r2': r2})
        incremental_matches_full(strategy, UNION_GET, source,
                                 plus - minus, minus - plus)

    @given(st.frozensets(st.tuples(st.text('ab', min_size=1, max_size=2),
                                   st.text('xy', min_size=1, max_size=2)),
                         max_size=4),
           st.frozensets(st.tuples(st.text('ab', min_size=1, max_size=2),
                                   st.text('xy', min_size=1, max_size=2)),
                         max_size=4),
           st.frozensets(st.tuples(st.text('ab', min_size=1, max_size=2),
                                   st.text('xy', min_size=1, max_size=2)),
                         max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_ced_equivalence(self, ed, eed, plus):
        from tests.conftest import CED_PUTDELTA, CED_GET
        from repro.relational.schema import DatabaseSchema
        strategy = UpdateStrategy.parse(
            'ced', DatabaseSchema.build(ed=['e', 'd'], eed=['e', 'd']),
            CED_PUTDELTA)
        source = Database.from_dict({'ed': ed, 'eed': eed})
        incremental_matches_full(strategy, CED_GET, source, plus, set())


class TestBinarize:

    def test_shapes(self):
        program = parse_program(
            'h(X, Z) :- r(X, Y), s(Y, Z), not t(X), Z > 1.')
        binary = binarize(program)
        for rule in binary.rules:
            rel_lits = [l for l in rule.body if hasattr(l, 'atom')]
            assert len(rel_lits) <= 2

    def test_semantics_preserved(self):
        program = parse_program(
            'h(X, Z) :- r(X, Y), s(Y, Z), not t(X), Z > 1.')
        binary = binarize(program)
        rng = random.Random(5)
        for _ in range(15):
            db = Database.from_dict({
                'r': {(rng.randint(0, 2), rng.randint(0, 2))
                      for _ in range(4)},
                's': {(rng.randint(0, 2), rng.randint(0, 4))
                      for _ in range(4)},
                't': {(rng.randint(0, 2),) for _ in range(2)}})
            assert evaluate(binary, db)['h'] == evaluate(program, db)['h']

    def test_union_heads_preserved(self):
        program = parse_program('h(X) :- r(X).\nh(X) :- s(X).')
        binary = binarize(program)
        assert len(binary.rules_for('h')) == 2


class TestGeneralIncrementalization:

    def test_projection_view_strategy(self):
        # Putback with the view used twice (projection-ish): outside the
        # shortcut, handled by the Appendix C construction.
        from repro.relational.schema import DatabaseSchema
        putdelta_text = """
            vt(I, T) :- tracks1(I, T, _).
            +tracks(I, T) :- tracks1(I, T, Q), not tracks(I, T).
            -tracks(I, T) :- tracks(I, T), not vt(I, T).
        """
        get_text = "tracks1(I, T, Q) :- tracks(I, T), Q = 0."
        strategy = UpdateStrategy.parse(
            'tracks1',
            DatabaseSchema.build(tracks={'i': 'int', 't': 'string'}),
            putdelta_text, expected_get=get_text)
        rng = random.Random(9)
        for _ in range(20):
            source = Database.from_dict({
                'tracks': {(rng.randint(0, 3), 'x')
                           for _ in range(rng.randint(0, 3))}})
            plus = {(rng.randint(0, 3), 'x', 0)
                    for _ in range(rng.randint(0, 2))}
            minus = {(rng.randint(0, 3), 'x', 0)
                     for _ in range(rng.randint(0, 2))}
            incremental_matches_full(strategy, get_text, source,
                                     plus - minus, minus - plus,
                                     general=True)

    def test_general_on_lvgn_program_matches(self, union_strategy):
        source = Database.from_dict({'r1': {(1,), (2,)}, 'r2': {(3,)}})
        incremental_matches_full(
            union_strategy, 'v(X) :- r1(X).\nv(X) :- r2(X).', source,
            {(5,)}, {(1,)}, general=True)
