"""Tests for the GetPut / PutGet composition programs (§4.3–4.4)."""

from repro.core.putget import (getput_check_programs, new_source_rules,
                               putget_check_program)
from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.relational.database import Database


class TestNewSourceRules:

    def test_rnew_shapes(self, union_strategy):
        rename, rules = new_source_rules(union_strategy.putdelta,
                                         union_strategy.sources)
        assert rename == {'r1': 'r1_new', 'r2': 'r2_new'}
        # r1 has +/- rules: two rnew rules; r2 only deletion: one rule.
        r1_rules = [r for r in rules if r.head.pred == 'r1_new']
        r2_rules = [r for r in rules if r.head.pred == 'r2_new']
        assert len(r1_rules) == 2
        assert len(r2_rules) == 1

    def test_rnew_computes_updated_source(self, union_strategy):
        _rename, rules = new_source_rules(union_strategy.putdelta,
                                          union_strategy.sources)
        program = parse_program('')
        from repro.datalog.ast import Program
        program = Program(union_strategy.putdelta.proper_rules() + rules)
        edb = Database.from_dict({'r1': {(1,)}, 'r2': {(2,), (4,)},
                                  'v': {(1,), (3,), (4,)}})
        out = evaluate(program, edb)
        assert out['r1_new'] == {(1,), (3,)}
        assert out['r2_new'] == {(4,)}


class TestPutGetComposition:

    def test_putget_program_matches_paper(self, union_strategy):
        # §4.4 lists the exact composed program for Example 4.1; check the
        # composed result semantically: v_new == get(put(S, V)).
        program, extra, missing = putget_check_program(
            union_strategy.putdelta, union_strategy.expected_get, 'v', 1,
            union_strategy.sources)
        edb = Database.from_dict({'r1': {(1,)}, 'r2': {(2,), (4,)},
                                  'v': {(1,), (3,), (4,)}})
        out = evaluate(program, edb)
        assert out['v_new'] == {(1,), (3,), (4,)}
        assert not out[extra]
        assert not out[missing]

    def test_putget_detects_extra_tuples(self, union_sources):
        # A bad strategy that inserts into BOTH relations yields no
        # violation, but one that fails to delete does.
        from repro.core.strategy import UpdateStrategy
        bad = UpdateStrategy.parse('v', union_sources, """
            +r1(X) :- v(X), not r1(X), not r2(X).
        """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
        program, extra, missing = putget_check_program(
            bad.putdelta, bad.expected_get, 'v', 1, bad.sources)
        # Source tuple (9,) not in updated view V={(1,)}: never deleted.
        edb = Database.from_dict({'r1': {(9,)}, 'r2': set(),
                                  'v': {(1,)}})
        out = evaluate(program, edb)
        assert (9,) in out[extra]

    def test_putget_detects_missing_tuples(self, union_sources):
        from repro.core.strategy import UpdateStrategy
        bad = UpdateStrategy.parse('v', union_sources, """
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
        """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
        program, extra, missing = putget_check_program(
            bad.putdelta, bad.expected_get, 'v', 1, bad.sources)
        # Inserting (3,) into the view is never propagated.
        edb = Database.from_dict({'r1': set(), 'r2': set(), 'v': {(3,)}})
        out = evaluate(program, edb)
        assert (3,) in out[missing]


class TestGetPutPrograms:

    def test_one_check_per_delta(self, union_strategy):
        checks = getput_check_programs(
            union_strategy.putdelta, union_strategy.expected_get, 'v',
            union_strategy.sources)
        goals = {goal for goal, _ in checks}
        assert goals == {'__gp_ins_r1__', '__gp_del_r1__',
                         '__gp_del_r2__'}

    def test_steady_state_has_no_effective_delta(self, union_strategy):
        checks = getput_check_programs(
            union_strategy.putdelta, union_strategy.expected_get, 'v',
            union_strategy.sources)
        edb = Database.from_dict({'r1': {(1,)}, 'r2': {(2,)}})
        for goal, program in checks:
            assert not evaluate(program, edb)[goal], goal

    def test_violating_get_produces_witness_rows(self, union_sources):
        from repro.core.strategy import UpdateStrategy
        # Wrong expected get (only r1): deleting r2 rows in steady state.
        strategy = UpdateStrategy.parse('v', union_sources, """
            -r2(X) :- r2(X), not v(X).
        """, expected_get='v(X) :- r1(X).')
        checks = getput_check_programs(
            strategy.putdelta, strategy.expected_get, 'v',
            strategy.sources)
        edb = Database.from_dict({'r1': set(), 'r2': {(7,)}})
        (goal, program), = checks
        assert evaluate(program, edb)[goal] == {(7,)}


# ---------------------------------------------------------------------------
# Hypothesis-driven round-trip laws (PutGet / GetPut), per backend
# ---------------------------------------------------------------------------
#
# §4.3–4.4 verify the laws *statically*; these run them dynamically over
# randomly generated view states and deltas, through the full engine
# pipeline on each storage backend: the validated strategy must satisfy
#
#     PutGet:  get(put(S, V')) = V'     for any reachable V'
#     GetPut:  put(S, get(S))  = S      (a no-op round trip)

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import UpdateStrategy
from repro.errors import ConstraintViolation
from repro.rdbms.dml import Delete, Insert
from repro.rdbms.engine import Engine
from repro.relational.schema import DatabaseSchema

BACKENDS = ('memory', 'sqlite')

_int_rows = st.frozensets(st.tuples(st.integers(0, 12)), max_size=8)
_lux_rows = st.frozensets(
    st.tuples(st.integers(0, 20), st.sampled_from(['a', 'b', 'c']),
              st.integers(1, 3000)), max_size=8)
_lux_view_rows = st.frozensets(
    st.tuples(st.integers(0, 20), st.sampled_from(['a', 'b', 'c']),
              st.integers(1001, 3000)), max_size=8)

_CACHE: dict = {}


def _strategy(name: str) -> UpdateStrategy:
    if name in _CACHE:
        return _CACHE[name]
    if name == 'union':
        strategy = UpdateStrategy.parse(
            'v', DatabaseSchema.build(r1={'a': 'int'}, r2={'a': 'int'}),
            """
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
    else:
        strategy = UpdateStrategy.parse(
            'luxuryitems', DatabaseSchema.build(
                items={'iid': 'int', 'iname': 'string', 'price': 'int'}),
            """
            ⊥ :- luxuryitems(I, N, P), not P > 1000.
            +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
            expensive(I, N, P) :- items(I, N, P), P > 1000.
            -items(I, N, P) :- expensive(I, N, P),
                not luxuryitems(I, N, P).
            """,
            expected_get='luxuryitems(I, N, P) :- items(I, N, P), '
                         'P > 1000.')
    _CACHE[name] = strategy
    return strategy


def _engine(name: str, backend: str, loads: dict) -> Engine:
    strategy = _strategy(name)
    engine = Engine(strategy.sources, backend=backend)
    for relation, rows in loads.items():
        engine.load(relation, rows)
    engine.define_view(strategy, validate_first=False)
    return engine


def _reach(engine, view: str, target_rows) -> None:
    """Drive the view to an arbitrary state V' through plain DML."""
    engine.execute(view, [Delete(None)] +
                   [Insert(row) for row in sorted(target_rows)])


class TestPutGetLaw:

    @pytest.mark.parametrize('backend', BACKENDS)
    @given(r1=_int_rows, r2=_int_rows, target=_int_rows)
    @settings(deadline=None, max_examples=40)
    def test_union_putget(self, backend, r1, r2, target):
        engine = _engine('union', backend, {'r1': r1, 'r2': r2})
        _reach(engine, 'v', target)
        # PutGet on the live cache…
        assert frozenset(engine.rows('v')) == target
        # …and on a cold engine rebuilt from the committed sources.
        rebuilt = _engine('union', backend, {
            'r1': engine.rows('r1'), 'r2': engine.rows('r2')})
        assert frozenset(rebuilt.rows('v')) == target

    @pytest.mark.parametrize('backend', BACKENDS)
    @given(items=_lux_rows, target=_lux_view_rows)
    @settings(deadline=None, max_examples=40)
    def test_luxury_putget(self, backend, items, target):
        engine = _engine('luxury', backend, {'items': items})
        _reach(engine, 'luxuryitems', target)
        assert frozenset(engine.rows('luxuryitems')) == target
        rebuilt = _engine('luxury', backend,
                          {'items': engine.rows('items')})
        assert frozenset(rebuilt.rows('luxuryitems')) == target

    @pytest.mark.parametrize('backend', BACKENDS)
    @given(items=_lux_rows,
           cheap=st.tuples(st.integers(50, 60), st.just('x'),
                           st.integers(0, 1000)))
    @settings(deadline=None, max_examples=25)
    def test_luxury_unreachable_state_rejected(self, backend, items,
                                               cheap):
        """States violating the ⊥-constraint are not reachable, and the
        attempt leaves S untouched (PutGet trivially preserved)."""
        engine = _engine('luxury', backend, {'items': items})
        before = engine.database()
        with pytest.raises(ConstraintViolation):
            engine.insert('luxuryitems', cheap)
        assert engine.database() == before


class TestGetPutLaw:

    @pytest.mark.parametrize('backend', BACKENDS)
    @given(r1=_int_rows, r2=_int_rows)
    @settings(deadline=None, max_examples=40)
    def test_union_getput(self, backend, r1, r2):
        engine = _engine('union', backend, {'r1': r1, 'r2': r2})
        current = sorted(engine.rows('v'))
        # Re-asserting the current view is a no-op on the sources.
        engine.execute('v', [Insert(row) for row in current])
        assert frozenset(engine.rows('r1')) == r1
        assert frozenset(engine.rows('r2')) == r2

    @pytest.mark.parametrize('backend', BACKENDS)
    @given(items=_lux_rows)
    @settings(deadline=None, max_examples=40)
    def test_luxury_getput(self, backend, items):
        engine = _engine('luxury', backend, {'items': items})
        strategy = _strategy('luxury')
        source = engine.database()
        delta = strategy.compute_delta(source, engine.rows('luxuryitems'))
        effective = delta.effective_on(source)
        assert effective.is_empty(), str(effective)
