"""Tests for the GetPut / PutGet composition programs (§4.3–4.4)."""

from repro.core.putget import (getput_check_programs, new_source_rules,
                               putget_check_program)
from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.relational.database import Database


class TestNewSourceRules:

    def test_rnew_shapes(self, union_strategy):
        rename, rules = new_source_rules(union_strategy.putdelta,
                                         union_strategy.sources)
        assert rename == {'r1': 'r1_new', 'r2': 'r2_new'}
        # r1 has +/- rules: two rnew rules; r2 only deletion: one rule.
        r1_rules = [r for r in rules if r.head.pred == 'r1_new']
        r2_rules = [r for r in rules if r.head.pred == 'r2_new']
        assert len(r1_rules) == 2
        assert len(r2_rules) == 1

    def test_rnew_computes_updated_source(self, union_strategy):
        _rename, rules = new_source_rules(union_strategy.putdelta,
                                          union_strategy.sources)
        program = parse_program('')
        from repro.datalog.ast import Program
        program = Program(union_strategy.putdelta.proper_rules() + rules)
        edb = Database.from_dict({'r1': {(1,)}, 'r2': {(2,), (4,)},
                                  'v': {(1,), (3,), (4,)}})
        out = evaluate(program, edb)
        assert out['r1_new'] == {(1,), (3,)}
        assert out['r2_new'] == {(4,)}


class TestPutGetComposition:

    def test_putget_program_matches_paper(self, union_strategy):
        # §4.4 lists the exact composed program for Example 4.1; check the
        # composed result semantically: v_new == get(put(S, V)).
        program, extra, missing = putget_check_program(
            union_strategy.putdelta, union_strategy.expected_get, 'v', 1,
            union_strategy.sources)
        edb = Database.from_dict({'r1': {(1,)}, 'r2': {(2,), (4,)},
                                  'v': {(1,), (3,), (4,)}})
        out = evaluate(program, edb)
        assert out['v_new'] == {(1,), (3,), (4,)}
        assert not out[extra]
        assert not out[missing]

    def test_putget_detects_extra_tuples(self, union_sources):
        # A bad strategy that inserts into BOTH relations yields no
        # violation, but one that fails to delete does.
        from repro.core.strategy import UpdateStrategy
        bad = UpdateStrategy.parse('v', union_sources, """
            +r1(X) :- v(X), not r1(X), not r2(X).
        """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
        program, extra, missing = putget_check_program(
            bad.putdelta, bad.expected_get, 'v', 1, bad.sources)
        # Source tuple (9,) not in updated view V={(1,)}: never deleted.
        edb = Database.from_dict({'r1': {(9,)}, 'r2': set(),
                                  'v': {(1,)}})
        out = evaluate(program, edb)
        assert (9,) in out[extra]

    def test_putget_detects_missing_tuples(self, union_sources):
        from repro.core.strategy import UpdateStrategy
        bad = UpdateStrategy.parse('v', union_sources, """
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
        """, expected_get='v(X) :- r1(X).\nv(X) :- r2(X).')
        program, extra, missing = putget_check_program(
            bad.putdelta, bad.expected_get, 'v', 1, bad.sources)
        # Inserting (3,) into the view is never propagated.
        edb = Database.from_dict({'r1': set(), 'r2': set(), 'v': {(3,)}})
        out = evaluate(program, edb)
        assert (3,) in out[missing]


class TestGetPutPrograms:

    def test_one_check_per_delta(self, union_strategy):
        checks = getput_check_programs(
            union_strategy.putdelta, union_strategy.expected_get, 'v',
            union_strategy.sources)
        goals = {goal for goal, _ in checks}
        assert goals == {'__gp_ins_r1__', '__gp_del_r1__',
                         '__gp_del_r2__'}

    def test_steady_state_has_no_effective_delta(self, union_strategy):
        checks = getput_check_programs(
            union_strategy.putdelta, union_strategy.expected_get, 'v',
            union_strategy.sources)
        edb = Database.from_dict({'r1': {(1,)}, 'r2': {(2,)}})
        for goal, program in checks:
            assert not evaluate(program, edb)[goal], goal

    def test_violating_get_produces_witness_rows(self, union_sources):
        from repro.core.strategy import UpdateStrategy
        # Wrong expected get (only r1): deleting r2 rows in steady state.
        strategy = UpdateStrategy.parse('v', union_sources, """
            -r2(X) :- r2(X), not v(X).
        """, expected_get='v(X) :- r1(X).')
        checks = getput_check_programs(
            strategy.putdelta, strategy.expected_get, 'v',
            strategy.sources)
        edb = Database.from_dict({'r1': set(), 'r2': {(7,)}})
        (goal, program), = checks
        assert evaluate(program, edb)[goal] == {(7,)}
