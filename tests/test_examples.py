"""The shipped examples must run clean — they are documentation."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / 'examples'
SRC = EXAMPLES.parent / 'src'


def run_example(name: str, timeout: int = 600) -> str:
    # pytest's `pythonpath` setting does not reach child processes, so
    # examples need src/ on PYTHONPATH even when the suite itself runs
    # from a clean checkout without an editable install.
    env = dict(os.environ)
    env['PYTHONPATH'] = os.pathsep.join(
        p for p in (str(SRC), env.get('PYTHONPATH')) if p)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)], capture_output=True,
        text=True, timeout=timeout, env=env)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example('quickstart.py')
    assert 'VALID' in out
    assert 'v(GY0) :- r1(GY0).' in out  # the derived union view
    assert 'v(GY0) :- r2(GY0).' in out
    assert 'after DELETE 2' in out


def test_invalid_strategies():
    out = run_example('invalid_strategies.py')
    assert out.count('INVALID') == 4
    assert 'witness' in out
    assert 'VALID (LVGN-Datalog' in out


def test_sql_export():
    out = run_example('sql_export.py')
    assert 'CREATE TABLE items' in out
    assert 'INSTEAD OF INSERT OR UPDATE OR DELETE ON luxuryitems' in out
    assert 'bytes of compiled SQL' in out


@pytest.mark.slow
def test_case_study():
    out = run_example('case_study.py')
    assert 'cascades: residents1962 -> residents -> male' in out
    assert 'rejected' in out


def test_order_sharing():
    out = run_example('order_sharing.py')
    assert 'VALID' in out
    # Receiver sovereignty: the same logical order lands in each
    # organisation's own base schema.
    assert "('o-1001', 'espresso machine', 'placed', 'unassigned')" \
        in out
    assert "('o-1001', 'espresso machine', 'shipped', 'partner')" in out
    # Outage → quarantine → anti-entropy catch-up.
    assert 'retailer->carrier:orders' in out
    assert 'links released     : 2' in out
    assert out.count("('o-1002', 'grinder', 'placed')") >= 2
    assert 'all three organisations converged' in out


def test_example_dlog_file_loads():
    from repro.core.strategyfile import load_strategy
    strategy = load_strategy(EXAMPLES / 'luxuryitems.dlog')
    assert strategy.view.name == 'luxuryitems'
