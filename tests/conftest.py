"""Shared fixtures: the paper's running examples as ready-made objects,
plus the Hypothesis profiles the fuzz harness runs under."""

from __future__ import annotations

import os

import pytest

from repro.core.strategy import UpdateStrategy
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema

try:
    from hypothesis import HealthCheck, settings as hyp_settings

    # Idempotence guard: some tests re-import this module under the
    # ``tests.conftest`` name, which must not re-register profiles
    # mid-test (hypothesis deprecation).
    try:
        hyp_settings.get_profile('ci')
    except Exception:
        _CHECKS = [HealthCheck.too_slow, HealthCheck.data_too_large,
                   HealthCheck.filter_too_much]
        # ``ci`` — the bounded smoke the CI matrix selects with
        # ``--hypothesis-profile=ci``; ``dev`` — the default local
        # run; ``long`` — the deep differential run
        # (``REPRO_FUZZ=long``), sized so the sharded-vs-single oracle
        # sees well over 200 generated transactions.
        hyp_settings.register_profile('ci', max_examples=10,
                                      deadline=None,
                                      suppress_health_check=_CHECKS)
        hyp_settings.register_profile('dev', max_examples=25,
                                      deadline=None,
                                      suppress_health_check=_CHECKS)
        hyp_settings.register_profile('long', max_examples=150,
                                      deadline=None,
                                      suppress_health_check=_CHECKS)
        hyp_settings.load_profile(
            'long' if os.environ.get('REPRO_FUZZ') == 'long' else 'dev')
except ImportError:                              # pragma: no cover
    pass

UNION_PUTDELTA = """
    -r1(X) :- r1(X), not v(X).
    -r2(X) :- r2(X), not v(X).
    +r1(X) :- v(X), not r1(X), not r2(X).
"""

UNION_GET = """
    v(X) :- r1(X).
    v(X) :- r2(X).
"""


@pytest.fixture
def union_sources() -> DatabaseSchema:
    return DatabaseSchema.build(r1={'a': 'int'}, r2={'a': 'int'})


@pytest.fixture
def union_strategy(union_sources) -> UpdateStrategy:
    """Example 3.1: the union-view update strategy."""
    return UpdateStrategy.parse('v', union_sources, UNION_PUTDELTA,
                                expected_get=UNION_GET)


@pytest.fixture
def union_database() -> Database:
    """The source instance of Example 3.1."""
    return Database.from_dict({'r1': {(1,)}, 'r2': {(2,), (4,)}})


LUXURY_PUTDELTA = """
    ⊥ :- luxuryitems(I, N, P), not P > 1000.
    +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
    expensive(I, N, P) :- items(I, N, P), P > 1000.
    -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
"""

LUXURY_GET = "luxuryitems(I, N, P) :- items(I, N, P), P > 1000."


@pytest.fixture
def luxury_sources() -> DatabaseSchema:
    return DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})


@pytest.fixture
def luxury_strategy(luxury_sources) -> UpdateStrategy:
    """A selection view with a domain constraint (catalog entry #3)."""
    return UpdateStrategy.parse('luxuryitems', luxury_sources,
                                LUXURY_PUTDELTA, expected_get=LUXURY_GET)


CED_PUTDELTA = """
    +ed(E, D) :- ced(E, D), not ed(E, D).
    -eed(E, D) :- ced(E, D), eed(E, D).
    +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
"""

CED_GET = "ced(E, D) :- ed(E, D), not eed(E, D)."


@pytest.fixture
def ced_sources() -> DatabaseSchema:
    return DatabaseSchema.build(ed=['emp_name', 'dept_name'],
                                eed=['emp_name', 'dept_name'])


@pytest.fixture
def ced_strategy(ced_sources) -> UpdateStrategy:
    """The case study's set-difference view (§3.3)."""
    return UpdateStrategy.parse('ced', ced_sources, CED_PUTDELTA,
                                expected_get=CED_GET)
