"""DML statement and Algorithm 2 (view delta derivation) tests."""

import pytest

from repro.errors import SchemaError, ViewUpdateError
from repro.rdbms.dml import (Delete, Insert, Update, compile_where,
                             derive_view_delta, match_where)
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema('v', ('a', 'b'), ('int', 'string'))


class TestWhereMatching:

    def test_none_matches_all(self):
        assert match_where((1, 'x'), None, SCHEMA)

    def test_dict_condition(self):
        assert match_where((1, 'x'), {'a': 1}, SCHEMA)
        assert not match_where((1, 'x'), {'a': 2}, SCHEMA)

    def test_multi_column_dict(self):
        assert match_where((1, 'x'), {'a': 1, 'b': 'x'}, SCHEMA)
        assert not match_where((1, 'x'), {'a': 1, 'b': 'y'}, SCHEMA)

    def test_callable_condition(self):
        assert match_where((5, 'x'), lambda row: row['a'] > 3, SCHEMA)

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            match_where((1, 'x'), {'zzz': 1}, SCHEMA)

    def test_compile_where_matches_match_where(self):
        cases = [None, {'a': 1}, {'a': 2}, {'a': 1, 'b': 'x'},
                 {'a': 1, 'b': 'y'}, lambda row: row['a'] > 3]
        for where in cases:
            compiled = compile_where(where, SCHEMA)
            for row in ((1, 'x'), (5, 'x'), (2, 'y')):
                assert compiled(row) == match_where(row, where, SCHEMA)

    def test_compile_where_unknown_column_stays_lazy(self):
        """Exactly match_where's data-dependent raise: an unknown
        column only fires when every condition *before* it matched —
        an earlier failing condition still returns False."""
        where = {'a': 999, 'zzz': 1}
        compiled = compile_where(where, SCHEMA)
        assert compiled((1, 'x')) is False       # a != 999: no raise
        assert not match_where((1, 'x'), where, SCHEMA)
        with pytest.raises(SchemaError):
            compiled((999, 'x'))                  # a matched: raise
        with pytest.raises(SchemaError):
            match_where((999, 'x'), where, SCHEMA)

    def test_bool_stays_acceptable_float(self):
        """The historical validate_tuple contract: bool (an int
        subclass) passes for float columns, is rejected for int."""
        floaty = RelationSchema('f', ('x',), ('float',))
        floaty.validate_tuple((True,))
        inty = RelationSchema('i', ('x',), ('int',))
        with pytest.raises(SchemaError):
            inty.validate_tuple((True,))


class TestStatementDeltas:

    def test_insert(self):
        delta = derive_view_delta([Insert((1, 'x'))], frozenset(), SCHEMA)
        assert delta.insertions == {(1, 'x')}

    def test_insert_existing_row_is_noop(self):
        delta = derive_view_delta([Insert((1, 'x'))],
                                  frozenset({(1, 'x')}), SCHEMA)
        assert delta.is_empty()

    def test_insert_validates_types(self):
        with pytest.raises(SchemaError):
            derive_view_delta([Insert(('bad', 'x'))], frozenset(), SCHEMA)

    def test_delete_by_condition(self):
        current = frozenset({(1, 'x'), (2, 'y')})
        delta = derive_view_delta([Delete({'b': 'y'})], current, SCHEMA)
        assert delta.deletions == {(2, 'y')}

    def test_delete_everything(self):
        current = frozenset({(1, 'x'), (2, 'y')})
        delta = derive_view_delta([Delete(None)], current, SCHEMA)
        assert delta.deletions == current

    def test_fully_keyed_delete_uses_membership(self):
        current = frozenset({(1, 'x')})
        delta = derive_view_delta([Delete({'a': 1, 'b': 'x'})], current,
                                  SCHEMA)
        assert delta.deletions == {(1, 'x')}

    def test_update_constant_assignment(self):
        current = frozenset({(1, 'x'), (2, 'y')})
        delta = derive_view_delta([Update({'b': 'z'}, {'a': 1})], current,
                                  SCHEMA)
        assert delta.insertions == {(1, 'z')}
        assert delta.deletions == {(1, 'x')}

    def test_update_callable_assignment(self):
        current = frozenset({(1, 'x')})
        delta = derive_view_delta(
            [Update({'a': lambda row: row['a'] + 10})], current, SCHEMA)
        assert delta.insertions == {(11, 'x')}

    def test_update_requires_assignments(self):
        with pytest.raises(ViewUpdateError):
            derive_view_delta([Update({})], frozenset({(1, 'x')}), SCHEMA)


class TestAlgorithm2Merging:

    def test_insert_then_delete_cancels(self):
        delta = derive_view_delta(
            [Insert((1, 'x')), Delete({'a': 1})], frozenset(), SCHEMA)
        assert delta.is_empty()

    def test_delete_then_insert_reinstates(self):
        current = frozenset({(1, 'x')})
        delta = derive_view_delta(
            [Delete({'a': 1}), Insert((1, 'x'))], current, SCHEMA)
        assert delta.is_empty()

    def test_later_statements_see_earlier_effects(self):
        # Insert then update the inserted row.
        delta = derive_view_delta(
            [Insert((1, 'x')), Update({'b': 'z'}, {'a': 1})],
            frozenset(), SCHEMA)
        assert delta.insertions == {(1, 'z')}
        assert delta.deletions == frozenset()

    def test_update_chain(self):
        current = frozenset({(1, 'x')})
        delta = derive_view_delta(
            [Update({'b': 'y'}, {'a': 1}), Update({'b': 'z'}, {'a': 1})],
            current, SCHEMA)
        assert delta.insertions == {(1, 'z')}
        assert delta.deletions == {(1, 'x')}

    def test_result_is_effective(self):
        # Deleting an absent row and inserting a present one: no-ops.
        current = frozenset({(1, 'x')})
        delta = derive_view_delta(
            [Delete({'a': 99}), Insert((1, 'x'))], current, SCHEMA)
        assert delta.is_empty()

    def test_paper_appendix_d_example(self):
        # "if the sequence is inserting a tuple t and then deleting this
        # tuple, t is no longer inserted."
        delta = derive_view_delta(
            [Insert((7, 'q')), Delete({'a': 7, 'b': 'q'})],
            frozenset(), SCHEMA)
        assert delta.is_empty()
