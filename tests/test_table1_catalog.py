"""The Table 1 reproduction as a test: every expressible catalog entry
must validate (the paper reports every benchmark strategy as
well-behaved), with the derived/confirmed view definition behaving
correctly on data.

These are the slowest tests in the suite (full Algorithm 1 per entry);
they are also the most important integration coverage we have.
"""

import pytest

from repro.benchsuite.catalog import ALL_ENTRIES
from repro.benchsuite.workload import build_engine, update_statement
from repro.core.validation import validate
from repro.datalog.evaluator import evaluate
from repro.fol.solver import SolverConfig
from repro.relational.generators import random_database

FAST = SolverConfig(random_trials=60)

EXPRESSIBLE = [e for e in ALL_ENTRIES if e.expressible]


@pytest.mark.parametrize('entry', EXPRESSIBLE, ids=lambda e: e.name)
def test_catalog_entry_validates(entry):
    strategy = entry.strategy()
    report = validate(strategy, config=FAST)
    assert report.valid, f'{entry.name}: {report}'
    assert report.expected_get_confirmed in (True, None)


@pytest.mark.parametrize('entry', EXPRESSIBLE, ids=lambda e: e.name)
def test_catalog_entry_putget_on_data(entry):
    """Dynamic PutGet spot-check: put a mutated view back and re-get it."""
    strategy = entry.strategy()
    source = random_database(strategy.sources, entry.sizes(40), seed=11,
                             column_pools=entry.column_pools)
    get_program = strategy.expected_get
    view = evaluate(get_program, source)[entry.name]
    # GetPut on the current state.
    assert strategy.put(source, view, enforce_constraints=False) == source
    # PutGet after deleting an arbitrary half of the view.
    mutated = frozenset(sorted(view, key=repr)[: len(view) // 2])
    updated = strategy.put(source, mutated, enforce_constraints=False)
    assert evaluate(get_program, updated)[entry.name] == mutated
