"""Schema, Database and generator tests."""

import random

import pytest

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.generators import random_database, random_rows
from repro.relational.schema import (AttributeType, DatabaseSchema,
                                     RelationSchema)


class TestRelationSchema:

    def test_default_types_are_string(self):
        rel = RelationSchema('r', ('a', 'b'))
        assert rel.types == ('string', 'string')

    def test_arity(self):
        assert RelationSchema('r', ('a', 'b', 'c')).arity == 3

    def test_type_count_mismatch(self):
        with pytest.raises(SchemaError):
            RelationSchema('r', ('a', 'b'), ('int',))

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            RelationSchema('r', ('a',), ('blob',))

    def test_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema('r', ('a', 'a'))

    def test_validate_tuple_ok(self):
        rel = RelationSchema('r', ('a', 'b'), ('int', 'string'))
        rel.validate_tuple((1, 'x'))

    def test_validate_tuple_wrong_arity(self):
        rel = RelationSchema('r', ('a',), ('int',))
        with pytest.raises(SchemaError):
            rel.validate_tuple((1, 2))

    def test_validate_tuple_wrong_type(self):
        rel = RelationSchema('r', ('a',), ('int',))
        with pytest.raises(SchemaError):
            rel.validate_tuple(('x',))

    def test_bool_is_not_int(self):
        rel = RelationSchema('r', ('a',), ('int',))
        with pytest.raises(SchemaError):
            rel.validate_tuple((True,))

    def test_int_accepted_as_float(self):
        rel = RelationSchema('r', ('a',), ('float',))
        rel.validate_tuple((1,))

    def test_date_stored_as_string(self):
        rel = RelationSchema('r', ('d',), ('date',))
        rel.validate_tuple(('1962-01-01',))


class TestDatabaseSchema:

    def test_build_convenience(self):
        schema = DatabaseSchema.build(r=['a'], s={'x': 'int'})
        assert schema.names() == ('r', 's')
        assert schema['s'].types == ('int',)

    def test_duplicate_relation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema((RelationSchema('r', ('a',)),
                            RelationSchema('r', ('b',))))

    def test_unknown_relation_lookup(self):
        schema = DatabaseSchema.build(r=['a'])
        with pytest.raises(SchemaError):
            schema['missing']

    def test_contains_and_arity(self):
        schema = DatabaseSchema.build(r=['a', 'b'])
        assert 'r' in schema
        assert schema.arity('r') == 2

    def test_extend(self):
        schema = DatabaseSchema.build(r=['a'])
        extended = schema.extend(RelationSchema('s', ('x',)))
        assert 's' in extended and 'r' in extended


class TestDatabase:

    def test_missing_relation_is_empty(self):
        assert Database.empty()['nope'] == frozenset()

    def test_equality_ignores_empty_relations(self):
        assert Database.from_dict({'r': set()}) == Database.empty()

    def test_hash_consistent_with_eq(self):
        a = Database.from_dict({'r': {(1,)}, 's': set()})
        b = Database.from_dict({'r': {(1,)}})
        assert a == b and hash(a) == hash(b)

    def test_with_relation(self):
        db = Database.empty().with_relation('r', {(1,)})
        assert db['r'] == {(1,)}

    def test_merge_unions(self):
        a = Database.from_dict({'r': {(1,)}})
        b = Database.from_dict({'r': {(2,)}, 's': {(3,)}})
        merged = a.merge(b)
        assert merged['r'] == {(1,), (2,)}
        assert merged['s'] == {(3,)}

    def test_restrict_and_without(self):
        db = Database.from_dict({'r': {(1,)}, 's': {(2,)}})
        assert db.restrict(['r']).names() == {'r'}
        assert db.without('r').names() == {'s'}

    def test_rename(self):
        db = Database.from_dict({'r': {(1,)}})
        assert db.rename({'r': 'q'})['q'] == {(1,)}

    def test_active_domain(self):
        db = Database.from_dict({'r': {(1, 'a')}, 's': {(2,)}})
        assert db.active_domain() == {1, 'a', 2}

    def test_total_size(self):
        db = Database.from_dict({'r': {(1,), (2,)}, 's': {(3,)}})
        assert db.total_size() == 3

    def test_conforms_to(self):
        schema = DatabaseSchema.build(r={'a': 'int'})
        Database.from_dict({'r': {(1,)}}).conforms_to(schema)
        with pytest.raises(SchemaError):
            Database.from_dict({'r': {('x',)}}).conforms_to(schema)
        with pytest.raises(SchemaError):
            Database.from_dict({'unknown': {(1,)}}).conforms_to(schema)


class TestGenerators:

    def test_random_rows_count_and_types(self):
        rel = RelationSchema('r', ('a', 'b'), ('int', 'string'))
        rows = random_rows(rel, 50, random.Random(1))
        assert len(rows) == 50
        for row in rows:
            rel.validate_tuple(row)

    def test_column_pools_respected(self):
        rel = RelationSchema('r', ('a', 'b'), ('int', 'string'))
        rows = random_rows(rel, 30, random.Random(1),
                           column_pools={'b': ['x', 'y']})
        assert {row[1] for row in rows} <= {'x', 'y'}

    def test_random_database_sizes(self):
        schema = DatabaseSchema.build(r={'a': 'int'}, s={'b': 'string'})
        db = random_database(schema, {'r': 10, 's': 5}, seed=3)
        assert len(db['r']) == 10
        assert len(db['s']) == 5

    def test_deterministic_given_seed(self):
        schema = DatabaseSchema.build(r={'a': 'int'})
        a = random_database(schema, {'r': 20}, seed=42)
        b = random_database(schema, {'r': 20}, seed=42)
        assert a == b

    def test_date_pool_generation(self):
        rel = RelationSchema('r', ('d',), ('date',))
        rows = random_rows(rel, 10, random.Random(0))
        for (value,) in rows:
            assert len(value) == 10 and value[4] == '-'
