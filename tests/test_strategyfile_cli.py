"""Strategy file format and CLI tests."""

import json

import pytest

from repro.cli import main
from repro.core.strategyfile import (dump_strategy, dumps_strategy,
                                     load_strategy, loads_strategy)
from repro.errors import DatalogSyntaxError, SchemaError

LUXURY_FILE = """
% selection view
.source items(iid: int, iname: string, price: int).
.view luxuryitems(iid: int, iname: string, price: int).

.get
luxuryitems(I, N, P) :- items(I, N, P), P > 1000.
.end

⊥ :- luxuryitems(I, N, P), not P > 1000.
+items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
expensive(I, N, P) :- items(I, N, P), P > 1000.
-items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
"""


class TestStrategyFile:

    def test_loads_full_file(self):
        strategy = loads_strategy(LUXURY_FILE)
        assert strategy.view.name == 'luxuryitems'
        assert strategy.view.types == ('int', 'string', 'int')
        assert strategy.sources.names() == ('items',)
        assert strategy.expected_get is not None
        assert strategy.program_size() == 4

    def test_types_default_to_string(self):
        strategy = loads_strategy("""
            .source ed(emp, dept).
            .view ced(emp, dept).
            +ed(E, D) :- ced(E, D), not ed(E, D).
            -ed(E, D) :- ed(E, D), not ced(E, D).
        """)
        assert strategy.sources['ed'].types == ('string', 'string')

    def test_type_aliases(self):
        strategy = loads_strategy("""
            .source t(a: integer, b: real, c: text, d: datetime).
            .view v(a: integer).
            +t(A, B, C, D) :- v(A), B = 0.5, C = 'x', D = '2020-01-01'.
            -t(A, B, C, D) :- t(A, B, C, D), not v(A).
        """)
        assert strategy.sources['t'].types == ('int', 'float', 'string',
                                               'date')

    def test_missing_view_rejected(self):
        with pytest.raises(SchemaError):
            loads_strategy('.source r(a: int).\n+r(X) :- v(X).')

    def test_missing_sources_rejected(self):
        with pytest.raises(SchemaError):
            loads_strategy('.view v(a: int).\n+r(X) :- v(X).')

    def test_unclosed_get_block(self):
        with pytest.raises(DatalogSyntaxError):
            loads_strategy("""
                .source r(a: int).
                .view v(a: int).
                .get
                v(X) :- r(X).
            """)

    def test_unknown_type_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            loads_strategy('.source r(a: blob).\n.view v(a: int).\n'
                           '+r(X) :- v(X).')

    def test_malformed_declaration(self):
        with pytest.raises(DatalogSyntaxError):
            loads_strategy('.source r a int.\n.view v(a: int).')

    def test_round_trip(self):
        strategy = loads_strategy(LUXURY_FILE)
        text = dumps_strategy(strategy)
        again = loads_strategy(text)
        assert again.view == strategy.view
        assert again.putdelta == strategy.putdelta
        assert again.expected_get == strategy.expected_get

    def test_file_io(self, tmp_path):
        strategy = loads_strategy(LUXURY_FILE)
        path = tmp_path / 'lux.dlog'
        dump_strategy(strategy, path)
        assert load_strategy(path).view == strategy.view


@pytest.fixture
def luxury_path(tmp_path):
    path = tmp_path / 'luxuryitems.dlog'
    path.write_text(LUXURY_FILE, encoding='utf-8')
    return str(path)


@pytest.fixture
def invalid_path(tmp_path):
    path = tmp_path / 'broken.dlog'
    path.write_text("""
        .source r1(a: int).
        .view v(a: int).
        +r1(X) :- v(X), r1(X).
        -r1(X) :- v(X), r1(X).
    """, encoding='utf-8')
    return str(path)


class TestCli:

    def test_validate_valid(self, luxury_path, capsys):
        assert main(['validate', luxury_path, '--quick']) == 0
        out = capsys.readouterr().out
        assert 'VALID' in out

    def test_validate_json(self, luxury_path, capsys):
        assert main(['validate', luxury_path, '--quick', '--json']) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload['valid'] is True
        assert payload['fragment'] == 'LVGN-Datalog'
        assert any('PutGet' in c['name'] for c in payload['checks'])

    def test_validate_invalid_exit_code(self, invalid_path, capsys):
        assert main(['validate', invalid_path, '--quick']) == 1
        assert 'INVALID' in capsys.readouterr().out

    def test_derive(self, luxury_path, capsys):
        assert main(['derive', luxury_path, '--quick']) == 0
        assert 'P > 1000' in capsys.readouterr().out

    def test_fragment(self, luxury_path, capsys):
        assert main(['fragment', luxury_path]) == 0
        out = capsys.readouterr().out
        assert 'LVGN-Datalog' in out
        assert 'operators   : S' in out
        assert 'constraints : C' in out

    def test_compile_to_file(self, luxury_path, tmp_path, capsys):
        out_path = tmp_path / 'out.sql'
        assert main(['compile', luxury_path, '--quick', '-o',
                     str(out_path)]) == 0
        sql = out_path.read_text(encoding='utf-8')
        assert 'INSTEAD OF' in sql

    def test_compile_invalid_refused(self, invalid_path, capsys):
        assert main(['compile', invalid_path, '--quick']) == 1

    def test_error_reporting(self, tmp_path, capsys):
        path = tmp_path / 'bad.dlog'
        path.write_text('.source r(a: int).\n.view v(a: int).\n'
                        '+r(X :- v(X).', encoding='utf-8')
        assert main(['validate', str(path)]) == 2
        assert 'error:' in capsys.readouterr().err

    def test_shipped_example_file(self, capsys):
        assert main(['fragment', 'examples/luxuryitems.dlog']) == 0
