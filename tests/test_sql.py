"""SQL compilation tests (§6.1): queries, DDL, trigger programs."""

import pytest

from repro.core.validation import validate
from repro.datalog.parser import parse_program
from repro.errors import TransformationError
from repro.fol.solver import SolverConfig
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.sql.ddl import create_schema, create_table, create_view
from repro.sql.translate import (POSTGRES, SQLITE, ColumnNamer,
                                 constraint_to_sql, dialect_by_name,
                                 plan_to_sql, query_to_sql,
                                 relevant_predicates, rule_to_select,
                                 sql_literal)
from repro.sql.triggers import (compile_strategy_to_sql,
                                constraint_checks_sql, delta_queries_sql,
                                trigger_program)

FAST = SolverConfig(random_trials=40)


class TestSqlLiterals:

    def test_string_escaping(self):
        assert sql_literal("it's") == "'it''s'"

    def test_numbers(self):
        assert sql_literal(42) == '42'
        assert sql_literal(2.5) == '2.5'

    def test_booleans_render_per_dialect(self):
        # bool is an int subclass: must not render as str(True).
        assert sql_literal(True) == 'TRUE'
        assert sql_literal(False) == 'FALSE'
        assert sql_literal(True, SQLITE) == '1'
        assert sql_literal(False, SQLITE) == '0'

    def test_none_renders_as_null(self):
        assert sql_literal(None) == 'NULL'
        assert sql_literal(None, SQLITE) == 'NULL'

    def test_dialect_lookup(self):
        assert dialect_by_name('sqlite') is SQLITE
        assert dialect_by_name('postgresql') is POSTGRES
        with pytest.raises(TransformationError):
            dialect_by_name('oracle')


class TestQueryTranslation:

    def test_select_join_where(self):
        program = parse_program('q(X, Z) :- r(X, Y), s(Y, Z), X > 1.')
        sql = query_to_sql(program, 'q')
        assert 'FROM r t0, s t1' in sql
        assert 't0.c1 = t1.c0' in sql
        assert 't0.c0 > 1' in sql

    def test_schema_column_names(self):
        schema = DatabaseSchema.build(r={'alpha': 'int', 'beta': 'string'})
        program = parse_program("q(X) :- r(X, 'z').")
        sql = query_to_sql(program, 'q', ColumnNamer(schema))
        assert 't0.alpha' in sql
        assert "t0.beta = 'z'" in sql

    def test_negation_becomes_not_exists(self):
        program = parse_program('q(X) :- r(X), not s(X).')
        sql = query_to_sql(program, 'q')
        assert 'NOT EXISTS (SELECT 1 FROM s s' in sql

    def test_negated_atom_with_wildcard(self):
        program = parse_program('q(X) :- r(X), not s(X, _).')
        sql = query_to_sql(program, 'q')
        # Only the bound column is constrained inside the subquery.
        assert 'NOT EXISTS' in sql and 's.c1' not in sql

    def test_union_as_cte_union(self):
        program = parse_program('q(X) :- r1(X).\nq(X) :- r2(X).')
        sql = query_to_sql(program, 'q')
        assert sql.count('SELECT DISTINCT') == 2
        assert 'UNION' in sql

    def test_equality_bound_constant_select(self):
        program = parse_program("q(X, T) :- r(X), T = 'tag'.")
        sql = query_to_sql(program, 'q')
        assert "'tag' AS c1" in sql

    def test_layered_idb_becomes_cte_chain(self):
        program = parse_program("""
            mid(X) :- r(X), X > 1.
            q(X) :- mid(X), not s(X).
        """)
        sql = query_to_sql(program, 'q')
        assert sql.index('mid AS') < sql.index('SELECT * FROM q')

    def test_delta_predicates_become_identifiers(self):
        program = parse_program('+r(X) :- v(X), not r(X).')
        sql = query_to_sql(program, '+r')
        assert 'delta_ins_r' in sql
        assert '+r' not in sql.replace('-- ', '')


class TestDependencyConePruning:

    PROGRAM = """
        aux_a(X) :- r(X), X > 1.
        aux_b(X) :- s(X).
        +r(X) :- v(X), aux_a(X).
        -r(X) :- aux_b(X), not v(X).
    """

    def test_with_clause_prunes_to_goal_cone(self):
        program = parse_program(self.PROGRAM)
        sql = query_to_sql(program, '+r')
        assert 'aux_a' in sql
        # aux_b feeds only -r: it must not appear in +r's WITH clause.
        assert 'aux_b' not in sql
        assert 'delta_del_r' not in sql

    def test_relevant_predicates_cone(self):
        program = parse_program(self.PROGRAM)
        assert relevant_predicates(program, {'+r'}) == {'+r', 'aux_a'}
        assert relevant_predicates(program, {'-r'}) == {'-r', 'aux_b'}

    def test_goal_without_rules_rejected(self):
        program = parse_program('q(X) :- r(X).')
        with pytest.raises(TransformationError):
            query_to_sql(program, 'nope')

    def test_unlowerable_rule_outside_cone_is_harmless(self):
        # -r's body would fail lowering if translated; +r's query
        # never touches it.
        program = parse_program(self.PROGRAM)
        sql = query_to_sql(program, '+r')
        assert 'SELECT * FROM delta_ins_r' in sql


class TestConstraintToSql:

    def test_witness_query_carries_cone(self):
        program = parse_program("""
            aux(X) :- r(X), X > 10.
            unrelated(X) :- s(X).
            ⊥ :- v(X), not aux(X).
            +r(X) :- v(X), not r(X).
        """)
        constraint = program.constraints()[0]
        sql = constraint_to_sql(program, constraint)
        assert 'aux AS' in sql
        assert 'unrelated' not in sql
        assert 'delta_ins_r' not in sql
        assert 'NOT EXISTS (SELECT 1 FROM aux s' in sql

    def test_non_constraint_rejected(self):
        program = parse_program('q(X) :- r(X).')
        with pytest.raises(TransformationError):
            constraint_to_sql(program, program.rules[0])

    def test_constraint_without_idb_needs_no_with(self):
        program = parse_program('⊥ :- v(X), X < 0.')
        sql = constraint_to_sql(program, program.constraints()[0])
        assert not sql.startswith('WITH')
        assert 't0.c0 < 0' in sql


class TestPlanToSql:

    def test_plan_lowering_matches_query_lowering(self):
        from repro.datalog.plan import compile_program
        program = parse_program('q(X, Z) :- r(X, Y), s(Y, Z).')
        plan = compile_program(program)
        assert plan_to_sql(plan, 'q') == query_to_sql(program, 'q')
        assert plan.to_sql('q') == query_to_sql(program, 'q')

    def test_plan_lowering_accepts_dialect_name(self):
        from repro.datalog.plan import compile_program
        program = parse_program("q(X) :- r(X), X = 'a'.")
        plan = compile_program(program)
        assert plan.to_sql('q', dialect='sqlite') \
            == query_to_sql(program, 'q', dialect=SQLITE)


class TestDdl:

    def test_create_table_types(self):
        rel = RelationSchema('t', ('a', 'b', 'c', 'd'),
                             ('int', 'float', 'string', 'date'))
        ddl = create_table(rel)
        assert 'a integer' in ddl
        assert 'b double precision' in ddl
        assert 'c text' in ddl
        assert 'd date' in ddl

    def test_create_schema_joins_tables(self):
        schema = DatabaseSchema.build(r=['a'], s=['b'])
        ddl = create_schema(schema)
        assert ddl.count('CREATE TABLE') == 2

    def test_create_view_avoids_self_shadowing(self, union_strategy):
        sql = create_view(union_strategy.view,
                          union_strategy.expected_get,
                          union_strategy.sources)
        assert sql.startswith('CREATE OR REPLACE VIEW v AS')
        assert 'WITH v AS' not in sql


class TestTriggerProgram:

    def test_full_compilation_structure(self, union_strategy):
        report = validate(union_strategy, config=FAST)
        sql = compile_strategy_to_sql(union_strategy,
                                      report.view_definition)
        assert 'CREATE OR REPLACE VIEW v AS' in sql
        assert 'INSTEAD OF INSERT OR UPDATE OR DELETE ON v' in sql
        assert 'CREATE TEMP TABLE IF NOT EXISTS delta_ins_v' in sql
        assert 'delta_del_v' in sql
        assert 'RETURN NULL;' in sql

    def test_constraint_check_raises(self, luxury_strategy):
        sql = trigger_program(luxury_strategy)
        assert 'RAISE EXCEPTION' in sql
        assert 'luxuryitems_updated' in sql

    def test_constraint_queries_target_updated_view(self, luxury_strategy):
        checks = constraint_checks_sql(luxury_strategy)
        assert len(checks) == 1
        _text, query = checks[0]
        assert 'luxuryitems_updated' in query

    def test_incremental_deltas_read_delta_tables(self, union_strategy):
        queries = dict(delta_queries_sql(union_strategy,
                                         incremental=True))
        assert 'delta_ins_v' in queries['+r1']
        assert 'delta_del_v' in queries['-r1']

    def test_full_deltas_read_updated_view(self, union_strategy):
        queries = dict(delta_queries_sql(union_strategy,
                                         incremental=False))
        assert 'v_updated' in queries['+r1']

    def test_compile_without_view_definition_fails(self, union_sources):
        from repro.core.strategy import UpdateStrategy
        from repro.errors import ValidationError
        strategy = UpdateStrategy.parse('v', union_sources,
                                        '+r1(X) :- v(X), not r1(X).')
        with pytest.raises(ValidationError):
            compile_strategy_to_sql(strategy)

    def test_sql_size_scales_with_program(self, union_strategy,
                                          luxury_strategy):
        # Table 1's observation: bigger strategies compile to bigger SQL.
        report_a = validate(union_strategy, config=FAST)
        report_b = validate(luxury_strategy, config=FAST)
        sql_a = compile_strategy_to_sql(union_strategy,
                                        report_a.view_definition)
        sql_b = compile_strategy_to_sql(luxury_strategy,
                                        report_b.view_definition)
        assert len(sql_a) > 500 and len(sql_b) > 500
