"""Edge cases and failure-injection across module boundaries."""

import pytest

from repro.core.strategy import UpdateStrategy
from repro.core.validation import validate
from repro.datalog.ast import Atom, Lit, Program, Rule, Var
from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.errors import (ConstraintViolation, ContradictionError,
                          ReproError, SchemaError)
from repro.fol.solver import SolverConfig
from repro.rdbms.engine import Engine
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema

FAST = SolverConfig(random_trials=40)


class TestZeroArityPredicates:

    def test_zero_arity_idb(self):
        # Constructed programmatically (the surface syntax needs ≥1 arg).
        rule = Rule(Atom('flag', ()), (Lit(Atom('r', (Var('X'),))),))
        program = Program((rule,))
        out = evaluate(program, Database.from_dict({'r': {(1,)}}))
        assert out['flag'] == {()}
        out_empty = evaluate(program, Database.empty())
        assert out_empty['flag'] == frozenset()


class TestErrorHierarchy:

    def test_all_errors_are_repro_errors(self):
        from repro import errors
        for name in ('DatalogSyntaxError', 'SafetyError', 'SchemaError',
                     'FragmentError', 'ContradictionError',
                     'ConstraintViolation', 'ViewUpdateError',
                     'ValidationError', 'TransformationError',
                     'RecursionError_', 'SolverLimitError'):
            assert issubclass(getattr(errors, name), ReproError)

    def test_contradiction_error_payload(self):
        err = ContradictionError('r', frozenset({(1,)}))
        assert err.relation == 'r'
        assert (1,) in err.tuples

    def test_constraint_violation_payload(self):
        err = ConstraintViolation('false :- v(X).', witness=(1,))
        assert err.constraint == 'false :- v(X).'
        assert err.witness == (1,)


class TestEmptyAndDegenerateInstances:

    def test_put_on_empty_source(self, union_strategy):
        updated = union_strategy.put(Database.empty(), {(7,)})
        assert updated['r1'] == {(7,)}

    def test_put_empty_view_clears_sources(self, union_strategy,
                                           union_database):
        updated = union_strategy.put(union_database, set())
        assert updated['r1'] == frozenset()
        assert updated['r2'] == frozenset()

    def test_engine_view_over_empty_tables(self, union_strategy):
        engine = Engine(union_strategy.sources)
        engine.define_view(union_strategy, validate_first=False)
        assert engine.rows('v') == frozenset()
        engine.insert('v', (1,))
        assert engine.rows('r1') == {(1,)}

    def test_delete_from_empty_view_is_noop(self, union_strategy):
        engine = Engine(union_strategy.sources)
        engine.define_view(union_strategy, validate_first=False)
        engine.delete('v')  # no WHERE: delete all of nothing
        assert engine.rows('v') == frozenset()


class TestDuplicateAndIdempotentUpdates:

    def test_double_insert_is_idempotent(self, union_strategy):
        engine = Engine(union_strategy.sources)
        engine.define_view(union_strategy, validate_first=False)
        engine.insert('v', (3,))
        engine.insert('v', (3,))
        assert engine.rows('r1') == {(3,)}

    def test_put_is_idempotent(self, union_strategy, union_database):
        view = {(1,), (9,)}
        once = union_strategy.put(union_database, view)
        twice = union_strategy.put(once, view)
        assert once == twice


class TestStringDomains:

    def test_date_boundary_comparisons(self):
        sources = DatabaseSchema.build(
            log={'d': 'date', 'message': 'string'})
        strategy = UpdateStrategy.parse('recent', sources, """
            ⊥ :- recent(D, M), D < '2020-01-01'.
            +log(D, M) :- recent(D, M), not log(D, M).
            fresh(D, M) :- log(D, M), not D < '2020-01-01'.
            -log(D, M) :- fresh(D, M), not recent(D, M).
        """, expected_get="recent(D, M) :- log(D, M), "
                          "not D < '2020-01-01'.")
        report = validate(strategy, config=FAST)
        assert report.valid
        source = Database.from_dict({
            'log': {('2019-12-31', 'old'), ('2020-01-01', 'new')}})
        assert strategy.get(source) == {('2020-01-01', 'new')}
        updated = strategy.put(source, {('2020-06-06', 'x')})
        assert ('2019-12-31', 'old') in updated['log']
        assert ('2020-01-01', 'new') not in updated['log']

    def test_quote_heavy_strings_through_sql(self):
        from repro.sql.translate import query_to_sql
        program = parse_program('''q(X) :- r(X), X = 'o''brien'.''')
        sql = query_to_sql(program, 'q')
        assert "'o''brien'" in sql


class TestViewOnViewOfSameName:

    def test_source_named_like_delta(self):
        # A relation literally named like a prefixed predicate is not
        # confused with a delta.
        sources = DatabaseSchema.build(plus_r={'a': 'int'})
        with pytest.raises(SchemaError):
            # putdelta must target known relations.
            UpdateStrategy.parse('v', sources,
                                 '+unknown(X) :- v(X).')


class TestLargeTransactionMerging:

    def test_many_statements_fold_into_one_delta(self, union_strategy):
        engine = Engine(union_strategy.sources)
        engine.load('r2', [(0,)])
        engine.define_view(union_strategy, validate_first=False)
        with engine.transaction() as txn:
            for value in range(20):
                txn.insert('v', (value,))
            for value in range(0, 20, 2):
                txn.delete('v', where={'a': value})
        # The folds delete every even value — including the pre-existing
        # (0,) from r2 — and keep the inserted odd ones.
        assert engine.rows('v') == {(v,) for v in range(1, 20, 2)}
        assert engine.rows('r2') == frozenset()
