"""Multi-peer data-sharing tests (the Dejima-style network of
``rdbms/peernet.py``): delta propagation through each receiver's own
putback strategy, at-least-once delivery deduplicated by durable
per-link LSN watermarks, echo/cycle suppression via origin provenance,
retry with capped exponential backoff, quarantine + anti-entropy
catch-up, and crash recovery — including a real SIGKILL subprocess.

The randomized convergence proof under injected chaos lives in
``tests/fuzz/test_peer_chaos.py``; these are the deterministic
anchors."""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import SchemaError
from repro.rdbms import faults
from repro.rdbms.dml import Delete, Insert
from repro.rdbms.engine import Engine
from repro.rdbms.peernet import (Peer, PeerCrashed, PeerGap, PeerNetwork,
                                 ShareDelta, converged)
from repro.rdbms.sharded import ShardedEngine
from repro.core.strategy import UpdateStrategy
from repro.relational.schema import DatabaseSchema

VIEW = 'officeinfo'

OFFICE_PUTDELTA = """
    in_office(N, O) :- works(N, O, _, _).
    +works(N, O, P, E) :- officeinfo(N, O), not in_office(N, O),
        P = 'n/a', E = 'n/a'.
    -works(N, O, P, E) :- works(N, O, P, E), not officeinfo(N, O).
"""
OFFICE_GET = "officeinfo(N, O) :- works(N, O, _, _)."


def _office_strategy() -> UpdateStrategy:
    sources = DatabaseSchema.build(
        works={'wname': 'string', 'office': 'string',
               'phone': 'string', 'email': 'string'})
    return UpdateStrategy.parse(VIEW, sources, OFFICE_PUTDELTA,
                                expected_get=OFFICE_GET)


STRATEGY = _office_strategy()


def plain_factory(directory: Path) -> Engine:
    """The restartable peer engine: WAL recovery re-registers the
    view, ``exist_ok`` adopts it on the second construction."""
    engine = Engine(STRATEGY.sources, wal=directory / 'engine.wal',
                    wal_sync=False)
    engine.define_view(STRATEGY, validate_first=False, exist_ok=True)
    return engine


def sharded_factory(directory: Path) -> ShardedEngine:
    engine = ShardedEngine(STRATEGY.sources, shards=2,
                           shard_keys={'works': 'wname'},
                           wal_dir=directory / 'shards',
                           wal_sync=False)
    engine.define_view(STRATEGY, validate_first=False, exist_ok=True)
    return engine


class FakeClock:
    """Injectable time source: ``sleep`` advances it, nothing blocks."""

    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


def build_network(tmp_path, names=('a', 'b'), **kwargs) -> PeerNetwork:
    clock = kwargs.pop('clock', None) or FakeClock()
    net = PeerNetwork(clock=clock, sleep=clock.sleep, **kwargs)
    net.clock = clock
    for name in names:
        net.add_peer(name, plain_factory, tmp_path / name,
                     shares=(VIEW,))
    net.share(VIEW, names)
    return net


def delta(lsn: int, rows, *, sender='x', origins=('x',),
          deletions=()) -> ShareDelta:
    return ShareDelta(sender, VIEW, lsn, frozenset(origins),
                      frozenset(rows), frozenset(deletions))


class TestPropagation:

    def test_mesh_converges_bidirectionally(self, tmp_path):
        net = build_network(tmp_path, ('a', 'b', 'c'))
        try:
            net.peers['a'].engine.execute(
                VIEW, [Insert(('a:alice', 'hq'))])
            net.peers['b'].engine.execute(
                VIEW, [Insert(('b:bob', 'lab'))])
            assert net.settle()
            assert converged(net.peers.values(), VIEW)
            assert net.peers['c'].rows(VIEW) == frozenset(
                {('a:alice', 'hq'), ('b:bob', 'lab')})
            # Deletes propagate the same way — and through the
            # *receiver's* putback (rows leave every peer's bases).
            net.peers['c'].engine.execute(
                VIEW, [Delete({'wname': 'a:alice'})])
            assert net.settle()
            assert converged(net.peers.values(), VIEW)
            assert net.peers['a'].rows(VIEW) == frozenset(
                {('b:bob', 'lab')})
            assert frozenset(
                net.peers['a'].engine.rows('works')) == frozenset(
                {('b:bob', 'lab', 'n/a', 'n/a')})
        finally:
            net.close()

    def test_received_rows_apply_through_own_putback(self, tmp_path):
        """The receiver's bases are written by its *own* strategy —
        the putback fills source attributes the view does not carry."""
        net = build_network(tmp_path)
        try:
            net.peers['a'].engine.execute(VIEW, [Insert(('n1', 'o1'))])
            assert net.settle()
            assert frozenset(
                net.peers['b'].engine.rows('works')) == frozenset(
                {('n1', 'o1', 'n/a', 'n/a')})
        finally:
            net.close()

    def test_initial_data_is_published_on_first_build(self, tmp_path):
        """A fresh peer's loaded base data reaches subscribers — the
        construction-time reconciliation treats it as an unpublished
        delta."""
        def seeded(directory):
            engine = plain_factory(directory)
            if not engine.rows('works'):
                engine.load('works', [('seed', 'hq', 'p', 'e')])
            return engine

        net = PeerNetwork()
        try:
            seeder = net.add_peer('s', seeded, tmp_path / 's',
                                  shares=(VIEW,))
            net.add_peer('r', plain_factory, tmp_path / 'r',
                         shares=(VIEW,))
            net.share(VIEW, ('s', 'r'))
            assert seeder.stats['reconciliations'] == 1
            assert net.settle()
            assert net.peers['r'].rows(VIEW) == frozenset(
                {('seed', 'hq')})
        finally:
            net.close()

    def test_share_requires_the_view(self, tmp_path):
        def no_view(directory):
            return Engine(STRATEGY.sources)

        with pytest.raises(SchemaError):
            Peer('x', no_view, tmp_path / 'x', shares=(VIEW,))


class TestWatermarks:

    def test_duplicate_delivery_is_dropped(self, tmp_path):
        peer = Peer('b', plain_factory, tmp_path / 'b', shares=())
        try:
            message = delta(1, {('n1', 'o1')})
            assert peer.receive(message) == 'applied'
            assert peer.receive(message) == 'duplicate'
            assert peer.rows(VIEW) == frozenset({('n1', 'o1')})
            assert peer.watermark('x', VIEW) == 1
            assert peer.stats['duplicates'] == 1
        finally:
            peer.close()

    def test_gap_is_rejected(self, tmp_path):
        peer = Peer('b', plain_factory, tmp_path / 'b', shares=())
        try:
            assert peer.receive(delta(1, {('n1', 'o1')})) == 'applied'
            with pytest.raises(PeerGap):
                peer.receive(delta(3, {('n3', 'o3')}))
            # Nothing applied, watermark untouched: in-order resend
            # then proceeds normally.
            assert peer.rows(VIEW) == frozenset({('n1', 'o1')})
            assert peer.receive(delta(2, {('n2', 'o2')})) == 'applied'
            assert peer.receive(delta(3, {('n3', 'o3')})) == 'applied'
        finally:
            peer.close()

    def test_watermarks_survive_restart(self, tmp_path):
        peer = Peer('b', plain_factory, tmp_path / 'b', shares=())
        peer.receive(delta(1, {('n1', 'o1')}))
        peer.receive(delta(2, {('n2', 'o2')}))
        peer.close()
        again = Peer('b', plain_factory, tmp_path / 'b', shares=())
        try:
            assert again.watermark('x', VIEW) == 2
            assert again.receive(delta(2, {('n2', 'o2')})) \
                == 'duplicate'
            assert again.receive(delta(3, {('n3', 'o3')})) == 'applied'
        finally:
            again.close()

    def test_watermarks_survive_engine_checkpoint(self, tmp_path):
        """Compaction rewrites the engine WAL; the registered
        checkpoint extra re-emits the ack notes into the snapshot."""
        peer = Peer('b', plain_factory, tmp_path / 'b', shares=())
        peer.receive(delta(1, {('n1', 'o1')}))
        peer.engine.checkpoint()
        # Remove the sidecar too: the engine log alone must carry the
        # watermark through the rewrite.
        peer.close()
        (tmp_path / 'b' / 'peer-state.wal').unlink()
        again = Peer('b', plain_factory, tmp_path / 'b', shares=())
        try:
            assert again.watermark('x', VIEW) == 1
        finally:
            again.close()

    def test_noop_reapply_still_acks_durably(self, tmp_path):
        """Idempotent redelivery whose apply changes nothing writes no
        commit record — the ack must reach the sidecar, or a restart
        would regress the watermark."""
        peer = Peer('b', plain_factory, tmp_path / 'b', shares=())
        peer.receive(delta(1, {('n1', 'o1')}))
        # Same rows again under the next LSN: net-empty apply.
        assert peer.receive(delta(2, {('n1', 'o1')})) == 'applied'
        assert peer.stats['sidecar_acks'] == 1
        peer.close()
        again = Peer('b', plain_factory, tmp_path / 'b', shares=())
        try:
            assert again.watermark('x', VIEW) == 2
        finally:
            again.close()


class TestEchoSuppression:

    def test_two_way_share_does_not_ping_pong(self, tmp_path):
        net = build_network(tmp_path)
        try:
            net.peers['a'].engine.execute(VIEW, [Insert(('n1', 'o1'))])
            assert net.settle()
            stats = net.stats()
            # b re-published a's delta (provenance {a, b}); a saw its
            # own name in the origins and acknowledged without
            # applying — outboxes stay quiet afterwards.
            assert net.peers['a'].stats['echoes'] == 1
            assert net.lag() == {'a->b:officeinfo': 0,
                                 'b->a:officeinfo': 0}
            published = {name: peer.stats['published']
                         for name, peer in net.peers.items()}
            assert net.settle()
            assert published == {name: peer.stats['published']
                                 for name, peer in net.peers.items()}, \
                stats
        finally:
            net.close()

    def test_echo_acks_are_durable(self, tmp_path):
        peer = Peer('b', plain_factory, tmp_path / 'b', shares=())
        assert peer.receive(
            delta(1, {('n1', 'o1')}, origins=('x', 'b'))) == 'echo'
        assert peer.rows(VIEW) == frozenset()
        peer.close()
        again = Peer('b', plain_factory, tmp_path / 'b', shares=())
        try:
            assert again.watermark('x', VIEW) == 1
        finally:
            again.close()

    def test_stale_relay_cannot_resurrect_deleted_row(self, tmp_path):
        """The mesh race per-link watermarks cannot catch: c receives
        a's insert and delete directly, then b's *relayed* copy of the
        old insert arrives (its link was stalled).  The relay carries
        the original root mark, c has already applied a later delta of
        that root, so the copy is acknowledged as stale — without root
        watermarks it would re-insert the deleted row and the mesh
        would diverge permanently."""
        net = build_network(tmp_path, ('a', 'b', 'c'),
                            quarantine_after=2)
        try:
            plan = faults.FaultPlan()
            plan.stall_link(link='b->c', once=False)
            with plan.installed():
                net.peers['a'].engine.execute(
                    VIEW, [Insert(('n1', 'o1'))])
                net.settle(max_rounds=30)
                assert net.peers['c'].rows(VIEW) == frozenset(
                    {('n1', 'o1')})
                net.peers['a'].engine.execute(
                    VIEW, [Delete({'wname': 'n1'})])
                net.settle(max_rounds=30)
                assert net.peers['c'].rows(VIEW) == frozenset()
            # Outage over: b's held-back relays (the stale insert
            # among them) finally reach c.
            net.heal()
            assert net.settle()
            assert net.peers['c'].stats['stale'] >= 1
            assert converged(net.peers.values(), VIEW)
            assert net.peers['c'].rows(VIEW) == frozenset()
        finally:
            net.close()

    def test_cycle_topology_converges(self, tmp_path):
        """a → b → c → a ring (not a mesh): the delta travels the
        ring once, accumulating provenance, and dies at its origin."""
        net = PeerNetwork()
        try:
            for name in ('a', 'b', 'c'):
                net.add_peer(name, plain_factory, tmp_path / name,
                             shares=(VIEW,))
            net.subscribe('a', VIEW, 'b')
            net.subscribe('b', VIEW, 'c')
            net.subscribe('c', VIEW, 'a')
            net.peers['a'].engine.execute(VIEW, [Insert(('n1', 'o1'))])
            assert net.settle()
            assert converged(net.peers.values(), VIEW)
            assert net.peers['a'].stats['echoes'] == 1
        finally:
            net.close()


class TestRetryQuarantineCatchup:

    def test_dropped_message_is_retried_with_backoff(self, tmp_path):
        net = build_network(tmp_path, retry_backoff=0.1,
                            retry_backoff_cap=0.4)
        try:
            plan = faults.FaultPlan()
            for _ in range(3):     # three consecutive send failures
                plan.drop_peer(link='a->b', hit=1)
            with plan.installed():
                net.peers['a'].engine.execute(
                    VIEW, [Insert(('n1', 'o1'))])
                assert net.settle()
            assert converged(net.peers.values(), VIEW)
            assert plan.fired('peer.send') == 3
            # Capped exponential backoff: 0.1, 0.2, then clamped 0.4.
            link = next(l for l in net.links if l.name == 'a->b')
            assert link.stats['retries'] == 3
            assert net.clock.slept[:3] == [
                pytest.approx(0.1), pytest.approx(0.2),
                pytest.approx(0.4)]
        finally:
            net.close()

    def test_stalled_link_quarantines_then_heals(self, tmp_path):
        net = build_network(tmp_path, quarantine_after=3)
        try:
            plan = faults.FaultPlan()
            plan.stall_link(link='a->b', once=False)
            with plan.installed():
                net.peers['a'].engine.execute(
                    VIEW, [Insert(('n1', 'o1'))])
                net.settle(max_rounds=20)
            link = next(l for l in net.links if l.name == 'a->b')
            assert link.quarantined
            assert link.stats['quarantines'] == 1
            assert net.peers['b'].rows(VIEW) == frozenset()
            # The outage ends: heal releases the link and catch-up
            # drains the durable outbox — anti-entropy is just
            # delivery resumed from the receiver's watermark.
            assert net.heal() == 1
            assert net.settle()
            assert converged(net.peers.values(), VIEW)
        finally:
            net.close()

    def test_reorder_injection_is_rejected_and_recovered(self,
                                                         tmp_path):
        net = build_network(tmp_path)
        try:
            plan = faults.FaultPlan()
            plan.reorder_peer(link='a->b', hit=1)
            with plan.installed():
                with net.peers['a'].engine.transaction() as txn:
                    txn.insert(VIEW, ('n1', 'o1'))
                net.peers['a'].engine.execute(
                    VIEW, [Insert(('n2', 'o2'))])
                assert net.settle()
            link = next(l for l in net.links if l.name == 'a->b')
            assert link.stats['gaps'] == 1
            assert converged(net.peers.values(), VIEW)
            assert net.peers['b'].rows(VIEW) == frozenset(
                {('n1', 'o1'), ('n2', 'o2')})
        finally:
            net.close()

    def test_duplicated_message_applies_once(self, tmp_path):
        net = build_network(tmp_path)
        try:
            plan = faults.FaultPlan()
            plan.dup_peer(link='a->b', hit=1)
            with plan.installed():
                net.peers['a'].engine.execute(
                    VIEW, [Insert(('n1', 'o1'))])
                assert net.settle()
            assert net.peers['b'].stats['duplicates'] == 1
            assert net.peers['b'].rows(VIEW) == frozenset(
                {('n1', 'o1')})
        finally:
            net.close()


class TestCrashRecovery:

    def test_injected_crash_mid_delivery_recovers(self, tmp_path):
        net = build_network(tmp_path)
        try:
            plan = faults.FaultPlan()
            plan.crash_peer(peer='b', hit=1)
            with plan.installed():
                net.peers['a'].engine.execute(
                    VIEW, [Insert(('n1', 'o1'))])
                assert net.settle()
            assert plan.fired('peer.deliver') == 1
            assert net.metrics.snapshot()['counters'][
                'peer.restarts'] == 1
            assert converged(net.peers.values(), VIEW)
            assert net.peers['b'].rows(VIEW) == frozenset(
                {('n1', 'o1')})
        finally:
            net.close()

    def test_lost_publication_is_reconciled_on_restart(self, tmp_path):
        """Crash in the window between engine commit and outbox
        append: the restarted peer diffs its recovered view against
        the outbox fold and publishes the difference."""
        net = build_network(tmp_path)
        try:
            victim = net.peers['a']
            # Simulate the crash window: commit lands in the engine
            # WAL but the publication hook never runs.
            victim.engine.commit_listeners.remove(victim._on_commit)
            victim.engine.execute(VIEW, [Insert(('n1', 'o1'))])
            restarted = net.restart_peer('a')
            assert restarted.stats['reconciliations'] == 1
            assert net.settle()
            assert converged(net.peers.values(), VIEW)
            assert net.peers['b'].rows(VIEW) == frozenset(
                {('n1', 'o1')})
        finally:
            net.close()

    def test_restart_resumes_inbound_links_from_watermarks(self,
                                                           tmp_path):
        net = build_network(tmp_path)
        try:
            net.peers['a'].engine.execute(VIEW, [Insert(('n1', 'o1'))])
            assert net.settle()
            stats_before = net.stats()['links']['a->b:officeinfo']
            restarted = net.restart_peer('b')
            assert restarted.rows(VIEW) == frozenset({('n1', 'o1')})
            # Nothing is redelivered: the handshake restored the
            # link's acked position from the durable watermark.
            assert net.pump() == 0
            assert restarted.stats['applied'] == 0
            assert restarted.stats['duplicates'] == 0
        finally:
            net.close()

    def test_sigkilled_peer_restarts_and_resynchronizes(self, tmp_path):
        """A real ``SIGKILL`` mid-stream: the child process applies
        two deltas and dies without any shutdown.  Reconstruction over
        its directory must recover rows *and* watermark exactly (zero
        lost, zero double-applied), then keep consuming the stream."""
        child = Path(__file__).parent / '_peer_crash_child.py'
        directory = tmp_path / 'victim'
        proc = subprocess.run(
            [sys.executable, str(child), str(directory), '2'],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        def stream(lsn):      # the child's deterministic upstream feed
            return delta(lsn, {(f'up:{lsn}', 'hq')}, sender='upstream',
                         origins=('upstream',))

        peer = Peer('victim', plain_factory, directory, shares=())
        try:
            assert peer.watermark('upstream', VIEW) == 2
            assert peer.rows(VIEW) == frozenset(
                {('up:1', 'hq'), ('up:2', 'hq')})
            # At-least-once redelivery after the crash: the duplicate
            # is absorbed, the next delta applies.
            assert peer.receive(stream(2)) == 'duplicate'
            assert peer.receive(stream(3)) == 'applied'
            assert ('up:3', 'hq') in peer.rows(VIEW)
        finally:
            peer.close()


class TestShardedPeers:

    def test_sharded_peer_interops_and_restarts(self, tmp_path):
        net = PeerNetwork()
        try:
            net.add_peer('a', plain_factory, tmp_path / 'a',
                         shares=(VIEW,))
            net.add_peer('s', sharded_factory, tmp_path / 's',
                         shares=(VIEW,))
            net.share(VIEW, ('a', 's'))
            net.peers['a'].engine.execute(VIEW, [Insert(('a:1', 'hq'))])
            net.peers['s'].engine.execute(VIEW, [Insert(('s:1', 'lab'))])
            assert net.settle()
            assert converged(net.peers.values(), VIEW)
            watermarks = dict(net.peers['s'].watermarks)
            rows = net.peers['s'].rows(VIEW)
            restarted = net.restart_peer('s')
            assert restarted.rows(VIEW) == rows
            assert restarted.watermarks == watermarks
            net.peers['a'].engine.execute(VIEW, [Insert(('a:2', 'hq'))])
            assert net.settle()
            assert converged(net.peers.values(), VIEW)
        finally:
            net.close()


class TestExistOk:

    def test_engine_define_view_exist_ok_adopts(self, tmp_path):
        engine = plain_factory(tmp_path)
        try:
            entry = engine.view(VIEW)
            assert engine.define_view(STRATEGY, validate_first=False,
                                      exist_ok=True) is entry
            with pytest.raises(SchemaError):
                engine.define_view(STRATEGY, validate_first=False)
        finally:
            engine.close()

    def test_sharded_coordinator_rebuilds_over_shard_wals(self,
                                                          tmp_path):
        first = sharded_factory(tmp_path)
        first.execute(VIEW, [Insert(('n1', 'o1'))])
        first.close()
        second = sharded_factory(tmp_path)
        try:
            assert frozenset(second.rows(VIEW)) == frozenset(
                {('n1', 'o1')})
        finally:
            second.close()
