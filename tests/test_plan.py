"""Planner tests: compile-once semantics, plan reuse in the engine,
plan-vs-wrapper equivalence on the benchsuite QA catalog, and
index-requirement declarations."""

import dataclasses

import pytest

from repro.benchsuite.catalog_qa import QA_ENTRIES
from repro.core.strategy import UpdateStrategy
from repro.datalog.evaluator import constraint_violations, evaluate
from repro.datalog.parser import parse_program
from repro.datalog.plan import (ExecutionPlan, compile_program,
                                compile_rule, schedule_body)
from repro.errors import SafetyError
from repro.rdbms.engine import Engine
from repro.relational.database import Database
from repro.relational.generators import random_database
from repro.relational.schema import DatabaseSchema


def db(**relations):
    return Database.from_dict(relations)


class TestCompile:

    def test_plans_are_memoized_across_reparses(self):
        text = 'v(X, Z) :- r(X, Y), s(Y, Z).'
        first = compile_program(parse_program(text))
        second = compile_program(parse_program(text))
        assert first is second

    def test_cache_bypass_compiles_fresh(self):
        program = parse_program('v(X) :- r(X).')
        assert compile_program(program, cache=False) \
            is not compile_program(program, cache=False)

    def test_plan_is_immutable(self):
        plan = compile_program(parse_program('v(X) :- r(X).'))
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.order = ()
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.rules_for('v')[0].nslots = 99

    def test_plans_and_strategies_pickle(self):
        # Plans are cached inside UpdateStrategy instances; both must
        # survive pickling (multiprocessing) and deep copies.
        import copy
        import pickle

        plan = compile_program(parse_program('v(X, Z) :- r(X, Y), s(Y, Z).'))
        edb = db(r={(1, 'a')}, s={('a', 2)})
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.evaluate(edb) == plan.evaluate(edb)
        assert copy.deepcopy(plan).evaluate(edb) == plan.evaluate(edb)

        strategy = UpdateStrategy.parse(
            'v', DatabaseSchema.build(r={'a': 'int'}),
            '+r(X) :- v(X), not r(X).\n-r(X) :- r(X), not v(X).',
            'v(X) :- r(X).')
        revived = pickle.loads(pickle.dumps(strategy))
        assert revived.putdelta_plan.evaluate(
            db(r={(1,)}, v={(1,), (2,)})) \
            == strategy.putdelta_plan.evaluate(db(r={(1,)}, v={(1,), (2,)}))

    def test_join_declares_index_requirement(self):
        plan = compile_program(parse_program('v(X, Z) :- r(X, Y), s(Y, Z).'))
        assert ('s', (0,)) in plan.index_requirements

    def test_delta_and_intermediate_rule_groups(self):
        plan = compile_program(parse_program("""
            ⊥ :- luxuryitems(I, N, P), not P > 1000.
            +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
            expensive(I, N, P) :- items(I, N, P), P > 1000.
            -items(I, N, P) :- expensive(I, N, P),
                not luxuryitems(I, N, P).
        """))
        assert plan.delta_goals == ('+items', '-items')
        assert plan.intermediate_preds == {'expensive'}
        assert len(plan.constraint_plans) == 1

    def test_unsafe_program_rejected_at_compile_time(self):
        with pytest.raises(SafetyError):
            compile_program(parse_program('v(X, Y) :- r(X).'),
                            cache=False)

    def test_unschedulable_rule_rejected(self):
        rule = parse_program('v(X) :- not r(X).').rules[0]
        with pytest.raises(SafetyError):
            compile_rule(rule)

    def test_schedule_body_orders_for_evaluability(self):
        rule = parse_program('v(X) :- X > 1, r(X).').rules[0]
        ordered = schedule_body(rule.body)
        assert str(ordered[0]) == 'r(X)'


class TestExecution:

    def test_plan_evaluate_matches_wrapper(self):
        program = parse_program("""
            a(X) :- r(X, _).
            v(X) :- a(X), not s(X), X > 1.
        """)
        edb = db(r={(1, 'x'), (2, 'y'), (3, 'z')}, s={(3,)})
        plan = compile_program(program, cache=False)
        assert plan.evaluate(edb) == evaluate(program, edb)

    def test_goals_limit_materialisation(self):
        plan = compile_program(parse_program("""
            cheap(X) :- r(X).
            expensive(X) :- r(X), s(X).
            v(X) :- cheap(X).
        """))
        out = plan.evaluate(db(r={(1,)}, s={(1,)}), goals=('v',))
        assert out['v'] == {(1,)}
        assert 'expensive' not in out.names()

    def test_constraint_violations_via_plan(self):
        plan = compile_program(parse_program('⊥ :- r(X), X > 2.'))
        violations = plan.constraint_violations(db(r={(5,)}))
        assert len(violations) == 1
        assert violations[0][1] == (5,)

    def test_static_schedule_handles_probe_bindings(self):
        # The probe schedule is compiled with head variables pre-bound:
        # `aux` is only ever probed fully bound and never materialised.
        plan = compile_program(parse_program("""
            aux(X, Y) :- big(X, Y).
            v(X) :- small(X), aux(X, X).
        """))
        out = plan.evaluate(db(small={(1,), (2,)}, big={(1, 1), (2, 9)}),
                            goals=('v',))
        assert out['v'] == {(1,)}


class TestStatisticsSeeding:
    """``compile_program(..., stats=...)`` breaks scheduling ties by
    estimated relation size (the engine passes observed cardinalities
    at define_view time)."""

    TEXT = 'h(X, Y) :- big(X), small(X, Y).'

    def _first_scan(self, plan):
        return plan.rule_plans['h'][0].steps[0].pred

    def test_stats_break_scheduling_ties(self):
        program = parse_program(self.TEXT)
        unseeded = compile_program(program)
        # Without stats the tie breaks by source order: big drives.
        assert self._first_scan(unseeded) == 'big'
        seeded = compile_program(program,
                                 stats={'big': 100_000, 'small': 4})
        assert self._first_scan(seeded) == 'small'
        # Known sizes beat unknown ones (unknown = assume large).
        partial = compile_program(program, stats={'small': 4})
        assert self._first_scan(partial) == 'small'

    def test_stats_key_separates_cache_entries(self):
        program = parse_program(self.TEXT)
        a = compile_program(program, stats={'big': 10, 'small': 99})
        b = compile_program(program, stats={'small': 99, 'big': 10})
        assert a is b                     # order-independent stats key
        assert compile_program(program) is not a

    def test_stats_do_not_change_results(self):
        program = parse_program(self.TEXT)
        edb = db(big={(1,), (2,)}, small={(1, 'a'), (3, 'b')})
        seeded = compile_program(program, stats={'big': 2, 'small': 2})
        assert seeded.evaluate(edb, goals=('h',))['h'] == {(1, 'a')}
        assert evaluate(program, edb)['h'] == {(1, 'a')}

    def test_engine_seeds_planner_with_observed_sizes(self):
        sources = DatabaseSchema.build(big={'a': 'int'},
                                       small={'a': 'int', 'b': 'int'})
        strategy = UpdateStrategy.parse('h', sources, """
            +big(X) :- h(X, _), not big(X).
        """, expected_get=self.TEXT)
        engine = Engine(sources)
        engine.load('big', [(i,) for i in range(500)])
        engine.load('small', [(1, 2)])
        entry = engine.define_view(strategy, validate_first=False)
        assert self._first_scan(entry.get_plan) == 'small'


def _qa_instances(entry, n=40):
    """(program, instance) pairs exercising the entry's putback program
    on a random source instance in steady state and under a deletion."""
    strategy = entry.strategy()
    data = random_database(strategy.sources, entry.sizes(n), seed=11,
                           column_pools=entry.column_pools)
    view_rows = strategy.get(data)
    steady = data.with_relation(entry.name, view_rows)
    yield strategy.putdelta, steady
    if view_rows:
        shrunk = set(view_rows)
        shrunk.discard(min(view_rows, key=repr))
        yield strategy.putdelta, data.with_relation(entry.name, shrunk)


@pytest.mark.parametrize('entry', [e for e in QA_ENTRIES if e.expressible],
                         ids=lambda e: e.name)
def test_plan_executor_bit_identical_on_qa_catalog(entry):
    """`evaluate()` and a freshly compiled plan executor agree exactly
    (same IDB relations, same constraint witnesses) on every QA view."""
    for program, instance in _qa_instances(entry):
        plan = compile_program(program, cache=False)
        assert plan.evaluate(instance) == evaluate(program, instance)
        assert plan.constraint_violations(instance) \
            == constraint_violations(program, instance)


class TestEngineReuse:

    SOURCES = DatabaseSchema.build(
        items={'iid': 'int', 'iname': 'string', 'price': 'int'})
    PUTDELTA = """
        ⊥ :- luxuryitems(I, N, P), not P > 1000.
        +items(I, N, P) :- luxuryitems(I, N, P), not items(I, N, P).
        expensive(I, N, P) :- items(I, N, P), P > 1000.
        -items(I, N, P) :- expensive(I, N, P), not luxuryitems(I, N, P).
    """
    GET = "luxuryitems(I, N, P) :- items(I, N, P), P > 1000."

    def _engine(self):
        strategy = UpdateStrategy.parse('luxuryitems', self.SOURCES,
                                        self.PUTDELTA, self.GET)
        engine = Engine(strategy.sources)
        engine.load('items', {(1, 'watch', 5000), (2, 'pen', 10)})
        entry = engine.define_view(strategy, validate_first=False)
        return engine, entry

    def test_same_plan_objects_across_repeated_updates(self):
        engine, entry = self._engine()
        plans_before = (entry.get_plan, entry.incremental_plan,
                        entry.strategy.putdelta_plan)
        for i in range(5):
            engine.insert('luxuryitems', (100 + i, f'ring{i}', 2000 + i))
        engine.delete('luxuryitems', where={'iid': 100})
        entry_after = engine.view('luxuryitems')
        assert entry_after is entry
        assert (entry_after.get_plan, entry_after.incremental_plan,
                entry_after.strategy.putdelta_plan) == plans_before
        assert entry_after.get_plan is plans_before[0]
        assert entry_after.incremental_plan is plans_before[1]
        assert all(isinstance(p, ExecutionPlan) for p in plans_before
                   if p is not None)

    def test_strategy_compiles_plans_once(self):
        strategy = UpdateStrategy.parse('luxuryitems', self.SOURCES,
                                        self.PUTDELTA, self.GET)
        assert strategy.putdelta_plan is strategy.putdelta_plan
        assert strategy.get_plan is strategy.get_plan

    def test_engine_prebuilds_declared_indexes(self):
        from repro.benchsuite.catalog import entry_by_name
        from repro.benchsuite.workload import build_engine
        entry = entry_by_name('koncerty')
        engine = build_engine(entry, 120, backend='memory')
        view_entry = engine.view('koncerty')
        # The get plan joins koncert ⋈ venues on the venue id (which
        # side drives the join depends on the cardinality stats the
        # engine seeds the planner with); the engine routes the
        # resulting index hints to the backend at define_view time,
        # which builds the persistent indexes immediately.
        declared = {(pred, positions) for pred, positions
                    in view_entry.get_plan.index_requirements
                    if pred in ('koncert', 'venues')}
        assert declared            # the join declares at least one probe
        for pred, positions in declared:
            assert positions in engine.backend._tables[pred]._indexes


class TestSealedExecutor:
    """The generated (sealed) executor tier must be observationally
    identical to the generic step interpreter — same rows, same
    constraint witnesses, same limit behavior."""

    def _both_tiers(self, program, instance, goals=None):
        from repro.datalog import evaluator as ev
        plan = compile_program(program, cache=False)
        for _ in range(3):        # past the seal threshold
            sealed = plan.evaluate(instance, goals=goals)
            sealed_viol = plan.constraint_violations(instance)
        old = ev._SEALING
        ev._SEALING = False
        try:
            generic = plan.evaluate(instance, goals=goals)
            generic_viol = plan.constraint_violations(instance)
        finally:
            ev._SEALING = old
        assert sealed == generic
        assert sealed_viol == generic_viol

    @pytest.mark.parametrize('entry',
                             [e for e in QA_ENTRIES if e.expressible],
                             ids=lambda e: e.name)
    def test_sealed_matches_generic_on_qa_catalog(self, entry):
        for program, instance in _qa_instances(entry):
            self._both_tiers(program, instance)

    def test_sealed_matches_generic_on_probe_heavy_program(self):
        program = parse_program("""
            aux(X, Y) :- r(X, Y), Y > 2.
            v(X) :- s(X), not aux(X, X).
            w(X, Y) :- r(X, Y), s(X), X = Y.
            ⊥ :- v(X), X > 90.
        """)
        instance = db(r={(i, i % 7) for i in range(100)},
                      s={(i,) for i in range(0, 100, 3)})
        self._both_tiers(program, instance)

    def test_sealed_first_witness_limit(self):
        from repro.datalog import evaluator as ev
        program = parse_program('⊥ :- r(X), X > 10.')
        plan = compile_program(program, cache=False)
        instance = db(r={(i,) for i in range(100)})
        for _ in range(3):
            sealed = plan.constraint_violations(instance,
                                                first_witness=True)
        assert len(sealed) == 1
        rule, witness = sealed[0]
        assert witness[0] > 10
        # The sealed run functions really are installed and shared
        # (unless the whole run pins the generic tier).
        if ev._SEALING:
            rule_plan = plan.constraint_plans[0].rule_plan
            assert callable(rule_plan.sealed[0])

    def test_repro_sealed_env_disables(self, monkeypatch):
        import subprocess, sys
        code = ('from repro.datalog import evaluator as ev; '
                'print(ev._SEALING)')
        out = subprocess.run(
            [sys.executable, '-c', code],
            env={'PYTHONPATH': 'src', 'REPRO_SEALED': '0'},
            capture_output=True, text=True, cwd='.')
        assert out.stdout.strip() == 'False'
