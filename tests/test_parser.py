"""Unit tests for the Datalog parser."""

import pytest

from repro.datalog.ast import Atom, BuiltinLit, Const, Lit, Var
from repro.datalog.parser import parse_atom, parse_program, parse_rule
from repro.errors import DatalogSyntaxError


class TestAtoms:

    def test_simple_atom(self):
        atom = parse_atom('r(X, Y)')
        assert atom == Atom('r', (Var('X'), Var('Y')))

    def test_constants(self):
        atom = parse_atom("r(1, 2.5, 'abc')")
        assert atom.args == (Const(1), Const(2.5), Const('abc'))

    def test_negative_number(self):
        atom = parse_atom('r(-1)')
        assert atom.args == (Const(-1),)

    def test_negative_float(self):
        assert parse_atom('r(-2.5)').args == (Const(-2.5),)

    def test_delta_insert_atom(self):
        assert parse_atom('+r(X)').pred == '+r'

    def test_delta_delete_atom(self):
        assert parse_atom('-r(X)').pred == '-r'

    def test_trailing_input_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom('r(X) extra')

    def test_missing_paren(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom('r(X')


class TestRules:

    def test_fact_like_rule(self):
        rule = parse_rule('r(1).')
        assert rule.head == Atom('r', (Const(1),))
        assert rule.body == ()

    def test_positive_body(self):
        rule = parse_rule('h(X) :- r(X), s(X).')
        assert len(rule.body) == 2
        assert all(isinstance(l, Lit) and l.positive for l in rule.body)

    def test_negated_atom_with_not(self):
        rule = parse_rule('h(X) :- r(X), not s(X).')
        assert not rule.body[1].positive

    def test_negated_atom_with_sign(self):
        rule = parse_rule('h(X) :- r(X), ¬s(X).')
        assert not rule.body[1].positive

    def test_builtin_equality(self):
        rule = parse_rule("h(X) :- r(X, Y), Y = 'a'.")
        builtin = rule.body[1]
        assert isinstance(builtin, BuiltinLit)
        assert builtin.op == '='
        assert builtin.positive

    def test_negated_equality(self):
        rule = parse_rule('h(X) :- r(X, Y), not Y = 1.')
        assert not rule.body[1].positive

    def test_inequality_becomes_negated_equality(self):
        rule = parse_rule('h(X) :- r(X, Y), X <> Y.')
        builtin = rule.body[1]
        assert builtin.op == '=' and not builtin.positive

    def test_not_inequality_becomes_positive_equality(self):
        rule = parse_rule('h(X) :- r(X, Y), not X <> Y.')
        builtin = rule.body[1]
        assert builtin.op == '=' and builtin.positive

    def test_comparison(self):
        rule = parse_rule('h(X) :- r(X), X > 5.')
        assert rule.body[1].op == '>'

    def test_comparison_with_constant_left(self):
        rule = parse_rule('h(X) :- r(X), 5 < X.')
        assert rule.body[1].op == '<'
        assert rule.body[1].left == Const(5)

    def test_constraint_rule_unicode(self):
        rule = parse_rule('⊥ :- v(X), X > 2.')
        assert rule.is_constraint

    def test_constraint_rule_keyword(self):
        assert parse_rule('false :- v(X).').is_constraint

    def test_constraint_rule_ascii(self):
        assert parse_rule('_|_ :- v(X).').is_constraint

    def test_delta_heads(self):
        rule = parse_rule('+r1(X) :- v(X), not r1(X).')
        assert rule.head.pred == '+r1'

    def test_missing_dot(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule('h(X) :- r(X)')


class TestAnonymousVariables:

    def test_each_anon_is_fresh(self):
        rule = parse_rule('h(X) :- r(X, _, _).')
        atom = rule.body[0].atom
        first, second = atom.args[1], atom.args[2]
        assert first != second
        assert first.name.startswith('_')

    def test_anon_in_negated_atom(self):
        rule = parse_rule('h(X) :- r(X), not s(X, _).')
        assert rule.body[1].atom.args[1].name.startswith('_anon')


class TestPrograms:

    def test_multiple_rules(self):
        program = parse_program("""
            v(X) :- r1(X).
            v(X) :- r2(X).
        """)
        assert len(program) == 2
        assert program.idb_preds() == {'v'}
        assert program.edb_preds() == {'r1', 'r2'}

    def test_comments_between_rules(self):
        program = parse_program("""
            % update strategy
            +r(X) :- v(X).  % insert
            -r(X) :- r(X), not v(X).
        """)
        assert len(program) == 2

    def test_empty_program(self):
        assert len(parse_program('')) == 0

    def test_example_3_1(self):
        program = parse_program("""
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
        """)
        assert program.delta_preds() == {'-r1', '-r2', '+r1'}
        assert program.edb_preds() == {'r1', 'r2', 'v'}

    def test_case_study_rules_parse(self):
        program = parse_program("""
            +male(E,B) :- residents(E,B,'M'), not male(E,B),
                not others(E,B,'M').
            -male(E,B) :- male(E,B), not residents(E,B,'M').
            +others(E,B,G) :- residents(E,B,G), not G='M', not G='F',
                not others(E,B,G).
        """)
        assert len(program) == 3

    def test_constants_collected(self):
        program = parse_program("v(X) :- r(X, 'a'), X > 10.")
        assert program.constants() == {Const('a'), Const(10)}

    def test_arity_mismatch_detected(self):
        program = parse_program('v(X) :- r(X).\nw(X) :- r(X, X).')
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            program.arities()
