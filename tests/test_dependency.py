"""Dependency graph, recursion detection and stratification tests."""

import pytest

from repro.datalog.dependency import (FALSUM, check_nonrecursive,
                                      dependency_graph, depends_on_view,
                                      is_nonrecursive, stratify)
from repro.datalog.parser import parse_program
from repro.errors import RecursionError_


class TestDependencyGraph:

    def test_edges(self):
        program = parse_program('v(X) :- r(X), not s(X).')
        graph = dependency_graph(program)
        assert graph.has_edge('r', 'v')
        assert graph.has_edge('s', 'v')
        assert graph['s']['v']['negative'] is True
        assert graph['r']['v']['negative'] is False

    def test_constraint_edges_to_falsum(self):
        program = parse_program('⊥ :- v(X).')
        graph = dependency_graph(program)
        assert graph.has_edge('v', FALSUM)

    def test_negative_flag_upgrades(self):
        program = parse_program('v(X) :- r(X).\nv(X) :- s(X), not r(X).')
        graph = dependency_graph(program)
        assert graph['r']['v']['negative'] is True


class TestRecursion:

    def test_nonrecursive_program(self):
        program = parse_program('v(X) :- r(X).\nw(X) :- v(X).')
        assert is_nonrecursive(program)
        check_nonrecursive(program)

    def test_direct_recursion(self):
        program = parse_program('p(X) :- p(X).')
        assert not is_nonrecursive(program)
        with pytest.raises(RecursionError_):
            check_nonrecursive(program)

    def test_mutual_recursion(self):
        program = parse_program('p(X) :- q(X).\nq(X) :- p(X).')
        with pytest.raises(RecursionError_):
            stratify(program)


class TestStratification:

    def test_topological_order(self):
        program = parse_program("""
            a(X) :- r(X).
            b(X) :- a(X).
            c(X) :- b(X), a(X).
        """)
        order = stratify(program)
        assert order.index('a') < order.index('b') < order.index('c')

    def test_edb_not_in_order(self):
        program = parse_program('v(X) :- r(X).')
        assert stratify(program) == ['v']


class TestDependsOnView:

    def test_direct_and_transitive(self):
        program = parse_program("""
            a(X) :- v(X).
            b(X) :- a(X).
            c(X) :- r(X).
        """)
        affected = depends_on_view(program, 'v')
        assert affected == {'a', 'b'}

    def test_view_absent(self):
        program = parse_program('a(X) :- r(X).')
        assert depends_on_view(program, 'missing') == set()
