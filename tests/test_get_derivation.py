"""View-definition derivation tests (§4.3, Lemma 4.2, Example 4.1)."""

import pytest

from repro.core.get_derivation import (analyze_steady_state, derive_get,
                                       phi12_check_program,
                                       phi3_check_program)
from repro.datalog.evaluator import evaluate
from repro.datalog.parser import parse_program
from repro.fol.solver import SolverConfig
from repro.relational.database import Database

FAST = SolverConfig(random_trials=40)


class TestSteadyStateAnalysis:

    def test_union_decomposition(self, union_strategy):
        analysis = analyze_steady_state(union_strategy.putdelta, 'v', 1,
                                        {'r1', 'r2'})
        # -r1, -r2 contribute negative-view conditions; +r1 positive.
        assert len(analysis.negative_conditions) == 2
        assert len(analysis.positive_conditions) == 1
        assert len(analysis.viewfree_conditions) == 0

    def test_constraint_contributions(self, luxury_strategy):
        analysis = analyze_steady_state(luxury_strategy.putdelta,
                                        'luxuryitems', 3, {'items'})
        # The domain constraint has a positive view atom.
        origins = [c.origin for c in analysis.positive_conditions]
        assert any('constraint' in origin for origin in origins)

    def test_source_only_constraints_are_axioms(self):
        program = parse_program("""
            ⊥ :- r1(X), not r2(X).
            -r1(X) :- r1(X), not v(X).
        """)
        analysis = analyze_steady_state(program, 'v', 1, {'r1', 'r2'})
        assert len(analysis.source_axioms.constraints()) == 1
        assert len(analysis.viewfree_conditions) == 0

    def test_view_free_delta_rule_lands_in_phi3(self):
        program = parse_program('-r1(X) :- r1(X), r2(X).')
        analysis = analyze_steady_state(program, 'v', 1, {'r1', 'r2'})
        assert len(analysis.viewfree_conditions) == 1


class TestDerivation:

    def test_example_4_1_derives_union(self, union_strategy):
        result = derive_get(union_strategy.putdelta, 'v', 1, {'r1', 'r2'},
                            config=FAST)
        assert result.ok
        # The derived get must be equivalent to r1 ∪ r2.
        db = Database.from_dict({'r1': {(1,), (2,)}, 'r2': {(2,), (3,)}})
        derived = evaluate(result.get_program, db)['v']
        assert derived == {(1,), (2,), (3,)}

    def test_selection_derivation(self, luxury_strategy):
        result = derive_get(luxury_strategy.putdelta, 'luxuryitems', 3,
                            {'items'}, schema=luxury_strategy.sources,
                            config=FAST)
        assert result.ok
        db = Database.from_dict({'items': {(1, 'a', 2000), (2, 'b', 10)}})
        derived = evaluate(result.get_program, db)['luxuryitems']
        assert derived == {(1, 'a', 2000)}

    def test_case_study_difference(self, ced_strategy):
        result = derive_get(ced_strategy.putdelta, 'ced', 2, {'ed', 'eed'},
                            config=FAST)
        assert result.ok
        db = Database.from_dict({'ed': {('a', 'cs'), ('b', 'math')},
                                 'eed': {('b', 'math')}})
        assert evaluate(result.get_program, db)['ced'] == {('a', 'cs')}

    def test_semijoin_with_constraint(self):
        program = parse_program("""
            ⊥ :- employees(E, B, G), not ced(E, _).
            +residents(E, B, G) :- employees(E, B, G),
                not residents(E, B, G).
            -residents(E, B, G) :- residents(E, B, G), ced(E, _),
                not employees(E, B, G).
        """)
        result = derive_get(program, 'employees', 3, {'residents', 'ced'},
                            config=FAST)
        assert result.ok
        db = Database.from_dict({
            'residents': {('a', 'd1', 'M'), ('b', 'd2', 'F')},
            'ced': {('a', 'cs')}})
        derived = evaluate(result.get_program, db)['employees']
        assert derived == {('a', 'd1', 'M')}

    def test_phi3_failure_detected(self):
        # Deletes unconditionally on a source-only condition: no steady
        # state exists.
        program = parse_program("""
            -r1(X) :- r1(X), r2(X).
            -r1(X) :- r1(X), not v(X).
        """)
        result = derive_get(program, 'v', 1, {'r1', 'r2'}, config=FAST)
        assert not result.ok
        assert 'φ3' in result.reason or 'view-independent' in result.reason

    def test_phi12_crossing_detected(self):
        # Deletion wants v ⊇ r1; insertion into r2 wants v ∩ r1 = ∅ when
        # r2 misses the tuple: bounds cross on r1 \ r2.
        program = parse_program("""
            -r1(X) :- r1(X), not v(X).
            +r2(X) :- v(X), r1(X), not r2(X).
        """)
        result = derive_get(program, 'v', 1, {'r1', 'r2'}, config=FAST)
        assert not result.ok

    def test_insert_only_strategy_refused(self):
        program = parse_program('+r1(X) :- v(X), not r1(X).')
        result = derive_get(program, 'v', 1, {'r1'}, config=FAST)
        assert not result.ok
        assert 'never deletes' in result.reason


class TestCheckPrograms:

    def test_phi3_program_evaluates(self):
        program = parse_program('-r1(X) :- r1(X), r2(X).')
        analysis = analyze_steady_state(program, 'v', 1, {'r1', 'r2'})
        check = phi3_check_program(analysis)
        db = Database.from_dict({'r1': {(1,)}, 'r2': {(1,)}})
        out = evaluate(check, db)
        assert out['__phi3__']

    def test_phi12_program_pairs(self, union_strategy):
        analysis = analyze_steady_state(union_strategy.putdelta, 'v', 1,
                                        {'r1', 'r2'})
        check = phi12_check_program(analysis)
        # 1 positive × 2 negative conditions = 2 pair rules.
        assert len(check.rules_for('__phi12__')) == 2
