"""Pretty-printer tests, including the parse∘pretty round-trip property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.ast import Atom, BuiltinLit, Const, Lit, Program, Rule, Var
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.pretty import pretty, pretty_rule, pretty_term


class TestPrettyBasics:

    def test_term_rendering(self):
        assert pretty_term(Var('X')) == 'X'
        assert pretty_term(Const(3)) == '3'
        assert pretty_term(Const('a')) == "'a'"
        assert pretty_term(Const("it's")) == "'it''s'"

    def test_rule_round_trip_text(self):
        text = "h(X) :- r(X, Y), not s(Y), X > 3."
        assert pretty_rule(parse_rule(text)) == text

    def test_constraint_rendered_as_false(self):
        rule = parse_rule('⊥ :- v(X).')
        assert pretty_rule(rule) == 'false :- v(X).'

    def test_program_rendering(self):
        program = parse_program('v(X) :- r1(X).\nv(X) :- r2(X).')
        assert pretty(program) == 'v(X) :- r1(X).\nv(X) :- r2(X).'

    def test_delta_heads(self):
        rule = parse_rule('+r(X) :- v(X), not r(X).')
        assert pretty_rule(rule) == '+r(X) :- v(X), not r(X).'


# -- property-based round trip ------------------------------------------------

_var_names = st.sampled_from(['X', 'Y', 'Z', 'W'])
_pred_names = st.sampled_from(['r', 's', 't', 'u'])
_consts = st.one_of(
    st.integers(min_value=-50, max_value=50).map(Const),
    st.sampled_from(['a', 'bc', '1962-01-01']).map(Const))
_terms = st.one_of(_var_names.map(Var), _consts)


def _atoms(pred_names=_pred_names):
    return st.builds(
        Atom, pred_names,
        st.lists(_terms, min_size=1, max_size=3).map(tuple))


_literals = st.one_of(
    st.builds(Lit, _atoms(), st.booleans()),
    st.builds(BuiltinLit, st.sampled_from(['=', '<', '>', '<=', '>=']),
              _terms, _terms, st.booleans()),
)


def _safe_rule(body_literals):
    """Wrap generated literals into a trivially safe rule by adding a
    guard atom binding every variable."""
    names = set()
    for literal in body_literals:
        names |= literal.var_names()
    guard_args = tuple(Var(n) for n in sorted(names)) or (Const(0),)
    guard = Lit(Atom('guard', guard_args))
    head = Atom('h', guard_args)
    return Rule(head, (guard,) + tuple(body_literals))


@given(st.lists(_literals, min_size=0, max_size=4))
@settings(max_examples=200, deadline=None)
def test_parse_pretty_round_trip(body):
    rule = _safe_rule(body)
    text = pretty_rule(rule)
    reparsed = parse_rule(text)
    # The parser canonicalises '<>' into negated '='; pretty-printing the
    # reparsed rule must therefore be a fixed point.
    assert pretty_rule(reparsed) == text


@given(st.lists(_literals, min_size=1, max_size=3), st.integers(0, 3))
@settings(max_examples=100, deadline=None)
def test_program_round_trip_preserves_rule_count(body, copies):
    rules = tuple(_safe_rule(body) for _ in range(copies + 1))
    program = Program(rules)
    assert len(parse_program(pretty(program))) == len(program)
