"""Delta relation tests, including property-based algebra checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ContradictionError
from repro.relational.database import Database
from repro.relational.delta import Delta, DeltaSet, apply_delta


class TestDelta:

    def test_paper_example(self):
        # §3.1: R = {(1,2),(1,3)}, ΔR = {-r(1,2), +r(1,1)}.
        delta = Delta(insertions={(1, 1)}, deletions={(1, 2)})
        result = delta.apply(frozenset({(1, 2), (1, 3)}))
        assert result == {(1, 1), (1, 3)}

    def test_contradiction_raises(self):
        delta = Delta(insertions={(1,)}, deletions={(1,)})
        with pytest.raises(ContradictionError):
            delta.apply(frozenset())

    def test_effective_on(self):
        delta = Delta(insertions={(1,), (2,)}, deletions={(3,), (4,)})
        effective = delta.effective_on(frozenset({(1,), (3,)}))
        assert effective.insertions == {(2,)}
        assert effective.deletions == {(3,)}

    def test_invert(self):
        delta = Delta(insertions={(1,)}, deletions={(2,)})
        inverted = delta.invert()
        assert inverted.insertions == {(2,)}
        assert inverted.deletions == {(1,)}

    def test_len_and_empty(self):
        assert len(Delta({(1,)}, {(2,)})) == 2
        assert Delta().is_empty()


class TestDeltaSet:

    def test_from_database(self):
        out = Database.from_dict({'+r1': {(3,)}, '-r2': {(2,)},
                                  'aux': {(9,)}})
        deltas = DeltaSet.from_database(out)
        assert deltas['r1'].insertions == {(3,)}
        assert deltas['r2'].deletions == {(2,)}
        assert 'aux' not in deltas.relations()

    def test_from_database_restricted(self):
        out = Database.from_dict({'+r1': {(3,)}, '+other': {(1,)}})
        deltas = DeltaSet.from_database(out, relations={'r1'})
        assert deltas.relations() == {'r1'}

    def test_apply_example_3_1(self, union_database):
        deltas = DeltaSet({'r1': Delta(insertions={(3,)}),
                           'r2': Delta(deletions={(2,)})})
        updated = apply_delta(union_database, deltas)
        assert updated['r1'] == {(1,), (3,)}
        assert updated['r2'] == {(4,)}

    def test_contradiction_detection(self):
        deltas = DeltaSet({'r': Delta({(1,)}, {(1,)})})
        assert deltas.is_contradictory()
        assert deltas.contradictions() == {'r': frozenset({(1,)})}
        with pytest.raises(ContradictionError):
            deltas.apply_to(Database.empty())

    def test_union(self):
        a = DeltaSet.single('r', insertions={(1,)})
        b = DeltaSet.single('r', deletions={(2,)})
        union = a.union(b)
        assert union['r'].insertions == {(1,)}
        assert union['r'].deletions == {(2,)}

    def test_as_database_round_trip(self):
        deltas = DeltaSet({'r': Delta({(1,)}, {(2,)})})
        assert DeltaSet.from_database(deltas.as_database()) == deltas

    def test_effective_on_database(self):
        db = Database.from_dict({'r': {(1,)}})
        deltas = DeltaSet({'r': Delta(insertions={(1,), (2,)})})
        effective = deltas.effective_on(db)
        assert effective['r'].insertions == {(2,)}


# -- property-based algebra --------------------------------------------------

rows = st.frozensets(
    st.tuples(st.integers(min_value=0, max_value=6)), max_size=8)


@given(rows, rows, rows)
@settings(max_examples=200, deadline=None)
def test_apply_semantics(base, insertions, deletions):
    """R ⊕ Δ = (R \\ Δ⁻) ∪ Δ⁺ for non-contradictory deltas."""
    insertions = insertions - deletions
    delta = Delta(insertions, deletions)
    assert delta.apply(base) == (base - deletions) | insertions


@given(rows, rows, rows)
@settings(max_examples=200, deadline=None)
def test_effective_delta_has_same_effect(base, insertions, deletions):
    insertions = insertions - deletions
    delta = Delta(insertions, deletions)
    effective = delta.effective_on(base)
    assert effective.apply(base) == delta.apply(base)
    # Effectiveness: nothing inserted that exists, nothing deleted that
    # does not.
    assert not (effective.insertions & base)
    assert effective.deletions <= base


@given(rows, rows)
@settings(max_examples=100, deadline=None)
def test_invert_undoes_effective_delta(base, insertions):
    delta = Delta(insertions - base, frozenset())
    applied = delta.apply(base)
    assert delta.invert().apply(applied) == base


# ---------------------------------------------------------------------------
# Partition split/merge (the sharded engine's routing primitive)
# ---------------------------------------------------------------------------


class TestSplitMerge:

    def test_split_by_key_modulus(self):
        delta = Delta({(0, 'a'), (1, 'b'), (3, 'c')}, {(2, 'd')})
        parts = delta.split(lambda row: row[0] % 2)
        assert parts[0] == Delta({(0, 'a')}, {(2, 'd')})
        assert parts[1].insertions == {(1, 'b'), (3, 'c')}
        assert parts[1].deletions == frozenset()

    def test_split_omits_empty_partitions(self):
        delta = Delta({(1,)}, set())
        parts = delta.split(lambda row: row[0] % 4)
        assert set(parts) == {1}

    def test_merge_inverts_split(self):
        delta = Delta({(i,) for i in range(10)},
                      {(i,) for i in range(20, 25)})
        parts = delta.split(lambda row: row[0] % 3)
        assert Delta.merge(parts.values()) == delta

    def test_deltaset_split_merge(self):
        deltas = DeltaSet({'r': Delta({(1,), (2,)}, {(3,)}),
                           's': Delta({(9,)}, set())})
        parts = deltas.split({'r': lambda row: row[0] % 2,
                              's': lambda row: 0})
        assert parts[0]['s'].insertions == {(9,)}
        assert parts[0]['r'] == Delta({(2,)}, set())
        assert parts[1]['r'] == Delta({(1,)}, {(3,)})
        merged = DeltaSet.merge(parts.values())
        assert merged['r'] == deltas['r'] and merged['s'] == deltas['s']


@given(rows, rows)
@settings(max_examples=100, deadline=None)
def test_split_partitions_are_disjoint_and_complete(insertions, deletions):
    deletions = deletions - insertions
    delta = Delta(insertions, deletions)
    parts = delta.split(lambda row: row[0] % 3)
    assert Delta.merge(parts.values()) == delta
    seen_plus: set = set()
    seen_minus: set = set()
    for part in parts.values():
        assert not (part.insertions & seen_plus)
        assert not (part.deletions & seen_minus)
        seen_plus |= part.insertions
        seen_minus |= part.deletions
