"""Unit tests for the Datalog tokenizer."""

import pytest

from repro.datalog.lexer import Token, TokenKind, tokenize
from repro.errors import DatalogSyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:

    def test_empty_input_yields_eof(self):
        tokens = tokenize('')
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_whitespace_only(self):
        assert kinds('   \n\t  ') == [TokenKind.EOF]

    def test_identifier(self):
        tokens = tokenize('employee')
        assert tokens[0].kind == TokenKind.IDENT
        assert tokens[0].text == 'employee'

    def test_variable_uppercase(self):
        assert tokenize('X')[0].kind == TokenKind.VARIABLE

    def test_variable_with_digits(self):
        token = tokenize('X12ab')[0]
        assert token.kind == TokenKind.VARIABLE
        assert token.text == 'X12ab'

    def test_anonymous_variable(self):
        assert tokenize('_')[0].kind == TokenKind.ANON

    def test_underscore_led_identifier_is_variable(self):
        assert tokenize('_tmp')[0].kind == TokenKind.VARIABLE

    def test_punctuation(self):
        assert kinds('( ) , .')[:-1] == [TokenKind.LPAREN, TokenKind.RPAREN,
                                         TokenKind.COMMA, TokenKind.DOT]

    def test_arrow(self):
        assert tokenize(':-')[0].kind == TokenKind.ARROW

    def test_plus_minus(self):
        assert kinds('+ -')[:-1] == [TokenKind.PLUS, TokenKind.MINUS]


class TestLiterals:

    def test_integer(self):
        token = tokenize('42')[0]
        assert token.kind == TokenKind.INT
        assert token.value == 42

    def test_float(self):
        token = tokenize('3.25')[0]
        assert token.kind == TokenKind.FLOAT
        assert token.value == 3.25

    def test_integer_then_dot_is_end_of_rule(self):
        tokens = tokenize('42.')
        assert tokens[0].kind == TokenKind.INT
        assert tokens[1].kind == TokenKind.DOT

    def test_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind == TokenKind.STRING
        assert token.value == 'hello'

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ''

    def test_date_string(self):
        assert tokenize("'1962-01-01'")[0].value == '1962-01-01'

    def test_unterminated_string_raises(self):
        with pytest.raises(DatalogSyntaxError):
            tokenize("'oops")

    def test_newline_in_string_raises(self):
        with pytest.raises(DatalogSyntaxError):
            tokenize("'a\nb'")


class TestOperators:

    @pytest.mark.parametrize('text,canon', [
        ('=', '='), ('<', '<'), ('>', '>'), ('<=', '<='), ('>=', '>='),
        ('<>', '<>'), ('!=', '<>'), ('\\=', '<>'),
    ])
    def test_operator_canonicalisation(self, text, canon):
        token = tokenize(text)[0]
        assert token.kind == TokenKind.OP
        assert token.value == canon

    def test_le_is_one_token(self):
        tokens = tokenize('X <= 3')
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.VARIABLE, TokenKind.OP, TokenKind.INT]


class TestKeywordsAndSpecials:

    def test_not_keyword(self):
        assert tokenize('not')[0].kind == TokenKind.NOT

    def test_negation_sign(self):
        assert tokenize('¬')[0].kind == TokenKind.NOT

    def test_falsum_unicode(self):
        assert tokenize('⊥')[0].kind == TokenKind.FALSUM

    def test_falsum_ascii(self):
        assert tokenize('_|_')[0].kind == TokenKind.FALSUM

    def test_falsum_keyword(self):
        assert tokenize('false')[0].kind == TokenKind.FALSUM

    def test_not_prefix_identifier_is_ident(self):
        assert tokenize('notation')[0].kind == TokenKind.IDENT


class TestCommentsAndPositions:

    def test_comment_skipped(self):
        assert kinds('% a comment\nr') == [TokenKind.IDENT, TokenKind.EOF]

    def test_comment_to_end_of_input(self):
        assert kinds('% nothing else') == [TokenKind.EOF]

    def test_line_tracking(self):
        tokens = tokenize('a\nb\n  c')
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_column_tracking(self):
        tokens = tokenize('ab cd')
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_unexpected_character(self):
        with pytest.raises(DatalogSyntaxError) as err:
            tokenize('r(X) ; q(X)')
        assert 'unexpected character' in str(err.value)


class TestFullRuleTokenization:

    def test_paper_rule(self):
        text = "-r1(X) :- r1(X), not v(X)."
        assert kinds(text)[:-1] == [
            TokenKind.MINUS, TokenKind.IDENT, TokenKind.LPAREN,
            TokenKind.VARIABLE, TokenKind.RPAREN, TokenKind.ARROW,
            TokenKind.IDENT, TokenKind.LPAREN, TokenKind.VARIABLE,
            TokenKind.RPAREN, TokenKind.COMMA, TokenKind.NOT,
            TokenKind.IDENT, TokenKind.LPAREN, TokenKind.VARIABLE,
            TokenKind.RPAREN, TokenKind.DOT]

    def test_constraint_rule(self):
        text = "⊥ :- v(X), X > 2."
        assert kinds(text)[0] == TokenKind.FALSUM
