"""Integration test: the paper's full case study (§3.3).

Five base tables, five layered updatable views — ``residents`` and ``ced``
directly over base tables; ``residents1962``, ``employees`` and
``retired`` over the *views* ``residents``/``ced`` — all registered in one
engine, with DML against the top layer cascading down to base tables.
"""

import pytest

from repro.core.strategy import UpdateStrategy
from repro.core.validation import validate
from repro.datalog.evaluator import evaluate
from repro.errors import ConstraintViolation
from repro.fol.solver import SolverConfig
from repro.rdbms.engine import Engine
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema

FAST = SolverConfig(random_trials=40)

BASE = DatabaseSchema.build(
    male={'emp_name': 'string', 'birth_date': 'date'},
    female={'emp_name': 'string', 'birth_date': 'date'},
    others={'emp_name': 'string', 'birth_date': 'date',
            'gender': 'string'},
    ed={'emp_name': 'string', 'dept_name': 'string'},
    eed={'emp_name': 'string', 'dept_name': 'string'},
)

# Views of the middle layer are sources for the top layer.
VIEW_SOURCES = DatabaseSchema.build(
    residents={'emp_name': 'string', 'birth_date': 'date',
               'gender': 'string'},
    ced={'emp_name': 'string', 'dept_name': 'string'},
)

RESIDENTS = """
    +male(E, B) :- residents(E, B, 'M'), not male(E, B),
        not others(E, B, 'M').
    -male(E, B) :- male(E, B), not residents(E, B, 'M').
    +female(E, B) :- residents(E, B, G), G = 'F', not female(E, B),
        not others(E, B, G).
    -female(E, B) :- female(E, B), not residents(E, B, 'F').
    +others(E, B, G) :- residents(E, B, G), not G = 'M', not G = 'F',
        not others(E, B, G).
    -others(E, B, G) :- others(E, B, G), not residents(E, B, G).
"""

RESIDENTS_GET = """
    residents(E, B, G) :- others(E, B, G).
    residents(E, B, 'F') :- female(E, B).
    residents(E, B, 'M') :- male(E, B).
"""

CED = """
    +ed(E, D) :- ced(E, D), not ed(E, D).
    -eed(E, D) :- ced(E, D), eed(E, D).
    +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
"""

CED_GET = "ced(E, D) :- ed(E, D), not eed(E, D)."

RESIDENTS1962 = """
    ⊥ :- residents1962(E, B, G), B > '1962-12-31'.
    ⊥ :- residents1962(E, B, G), B < '1962-01-01'.
    +residents(E, B, G) :- residents1962(E, B, G),
        not residents(E, B, G).
    -residents(E, B, G) :- residents(E, B, G), not B < '1962-01-01',
        not B > '1962-12-31', not residents1962(E, B, G).
"""

RESIDENTS1962_GET = ("residents1962(E, B, G) :- residents(E, B, G), "
                     "not B < '1962-01-01', not B > '1962-12-31'.")

EMPLOYEES = """
    ⊥ :- employees(E, B, G), not ced(E, _).
    +residents(E, B, G) :- employees(E, B, G), not residents(E, B, G).
    -residents(E, B, G) :- residents(E, B, G), ced(E, _),
        not employees(E, B, G).
"""

EMPLOYEES_GET = "employees(E, B, G) :- residents(E, B, G), ced(E, _)."

RETIRED = """
    -ced(E, D) :- ced(E, D), retired(E).
    +ced(E, D) :- residents(E, _, _), not retired(E), not ced(E, _),
        D = 'unknown'.
    +residents(E, B, G) :- retired(E), G = 'unknown',
        not residents(E, _, _), B = '0000-00-00'.
"""

RETIRED_GET = "retired(E) :- residents(E, B, G), not ced(E, _)."


def build_engine() -> Engine:
    engine = Engine(BASE)
    engine.load('male', [('bob', '1960-04-01'), ('dan', '1962-06-15')])
    engine.load('female', [('carol', '1962-03-02')])
    engine.load('others', [('alex', '1970-01-05', 'X')])
    engine.load('ed', [('bob', 'cs'), ('carol', 'math'), ('dan', 'cs'),
                       ('alex', 'bio')])
    engine.load('eed', [('dan', 'cs')])

    residents = UpdateStrategy.parse('residents', BASE, RESIDENTS,
                                     expected_get=RESIDENTS_GET)
    ced = UpdateStrategy.parse('ced', BASE, CED, expected_get=CED_GET)
    engine.define_view(residents, validate_first=False)
    engine.define_view(ced, validate_first=False)

    r1962 = UpdateStrategy.parse('residents1962', VIEW_SOURCES,
                                 RESIDENTS1962,
                                 expected_get=RESIDENTS1962_GET)
    employees = UpdateStrategy.parse('employees', VIEW_SOURCES, EMPLOYEES,
                                     expected_get=EMPLOYEES_GET)
    retired = UpdateStrategy.parse('retired', VIEW_SOURCES, RETIRED,
                                   expected_get=RETIRED_GET)
    engine.define_view(r1962, validate_first=False)
    engine.define_view(employees, validate_first=False)
    engine.define_view(retired, validate_first=False)
    return engine


class TestAllStrategiesValidate:

    @pytest.mark.parametrize('name,sources,putdelta,get', [
        ('residents', BASE, RESIDENTS, RESIDENTS_GET),
        ('ced', BASE, CED, CED_GET),
        ('residents1962', VIEW_SOURCES, RESIDENTS1962, RESIDENTS1962_GET),
        ('employees', VIEW_SOURCES, EMPLOYEES, EMPLOYEES_GET),
        ('retired', VIEW_SOURCES, RETIRED, RETIRED_GET),
    ])
    def test_valid_and_lvgn(self, name, sources, putdelta, get):
        strategy = UpdateStrategy.parse(name, sources, putdelta,
                                        expected_get=get)
        report = validate(strategy, config=FAST)
        assert report.valid, str(report)
        assert report.fragment.lvgn
        assert report.expected_get_confirmed


class TestLayeredContents:

    def test_initial_views(self):
        engine = build_engine()
        assert engine.rows('residents') == {
            ('bob', '1960-04-01', 'M'), ('dan', '1962-06-15', 'M'),
            ('carol', '1962-03-02', 'F'), ('alex', '1970-01-05', 'X')}
        assert engine.rows('ced') == {
            ('bob', 'cs'), ('carol', 'math'), ('alex', 'bio')}
        assert engine.rows('residents1962') == {
            ('dan', '1962-06-15', 'M'), ('carol', '1962-03-02', 'F')}
        # dan's only department is historical: retired.
        assert engine.rows('retired') == {('dan',)}
        assert engine.rows('employees') == {
            ('bob', '1960-04-01', 'M'), ('carol', '1962-03-02', 'F'),
            ('alex', '1970-01-05', 'X')}


class TestCascadingUpdates:

    def test_insert_into_residents_routes_by_gender(self):
        engine = build_engine()
        engine.insert('residents', ('eve', '1980-02-02', 'F'))
        assert ('eve', '1980-02-02') in engine.rows('female')
        engine.insert('residents', ('kim', '1975-05-05', 'N'))
        assert ('kim', '1975-05-05', 'N') in engine.rows('others')

    def test_ced_updates_move_departments_to_history(self):
        engine = build_engine()
        # bob leaves cs: the department becomes a former department.
        engine.delete('ced', where={'emp_name': 'bob'})
        assert ('bob', 'cs') in engine.rows('eed')
        assert ('bob', 'cs') in engine.rows('ed')
        # ... and bob is now retired (no current department).
        assert ('bob',) in engine.rows('retired')

    def test_residents1962_cascades_through_residents(self):
        engine = build_engine()
        engine.insert('residents1962', ('pat', '1962-07-07', 'M'))
        # Two layers down: pat lands in the male base table.
        assert ('pat', '1962-07-07') in engine.rows('male')
        assert ('pat', '1962-07-07', 'M') in engine.rows('residents')

    def test_residents1962_rejects_wrong_year(self):
        engine = build_engine()
        with pytest.raises(ConstraintViolation):
            engine.insert('residents1962', ('pat', '1990-07-07', 'M'))

    def test_employees_constraint_requires_department(self):
        engine = build_engine()
        with pytest.raises(ConstraintViolation):
            engine.insert('employees', ('ghost', '1950-01-01', 'M'))

    def test_employees_delete_cascades_to_base(self):
        engine = build_engine()
        engine.delete('employees', where={'emp_name': 'carol'})
        # carol left residents entirely (the strategy deletes from
        # residents), which cascades into the female base table.
        assert ('carol', '1962-03-02') not in engine.rows('female')
        assert ('carol', '1962-03-02', 'F') not in engine.rows('residents')

    def test_retired_insert_creates_unknown_resident(self):
        engine = build_engine()
        engine.insert('retired', ('zoe',))
        assert ('zoe', '0000-00-00', 'unknown') in engine.rows('residents')
        assert ('zoe', '0000-00-00') in engine.rows('others') or \
            ('zoe', '0000-00-00', 'unknown') in engine.rows('others')

    def test_retired_delete_assigns_unknown_department(self):
        engine = build_engine()
        assert ('dan',) in engine.rows('retired')
        engine.delete('retired', where={'emp_name': 'dan'})
        # dan becomes employed again with an 'unknown' department,
        # reflected through ced down to ed/eed.
        assert ('dan', 'unknown') in engine.rows('ced')
        assert ('dan',) not in engine.rows('retired')

    def test_putget_through_all_layers(self):
        """After arbitrary cascaded updates, every view equals its
        definition recomputed from base tables."""
        engine = build_engine()
        engine.insert('residents1962', ('pat', '1962-07-07', 'M'))
        engine.delete('employees', where={'emp_name': 'bob'})
        engine.insert('retired', ('zoe',))
        base = engine.database()
        residents = evaluate(
            UpdateStrategy.parse('residents', BASE, RESIDENTS,
                                 expected_get=RESIDENTS_GET).expected_get,
            base)['residents']
        assert engine.rows('residents') == residents
        ced = evaluate(
            UpdateStrategy.parse('ced', BASE, CED,
                                 expected_get=CED_GET).expected_get,
            base)['ced']
        assert engine.rows('ced') == ced
        layered = Database.from_dict({'residents': residents, 'ced': ced})
        for name, text in (('residents1962', RESIDENTS1962_GET),
                           ('employees', EMPLOYEES_GET),
                           ('retired', RETIRED_GET)):
            from repro.datalog.parser import parse_program
            expected = evaluate(parse_program(text), layered)[name]
            assert engine.rows(name) == expected, name
